//! Bandwidth quantities.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A bandwidth quantity in bits per second.
///
/// All link capacities, reservations and per-flow QoS demands in this
/// workspace are expressed as `Bandwidth`. The newtype rules out unit
/// confusion between bits and bytes or per-second and absolute quantities.
///
/// ```rust
/// use anycast_net::Bandwidth;
/// let link = Bandwidth::from_mbps(100);
/// let flow = Bandwidth::from_bps(64_000);
/// assert_eq!(link.checked_sub(flow), Some(Bandwidth::from_bps(99_936_000)));
/// assert_eq!(link.saturating_div(flow), 1562);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Creates a bandwidth from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Creates a bandwidth from kilobits (10³ bits) per second.
    pub const fn from_kbps(kbps: u64) -> Self {
        Bandwidth(kbps * 1_000)
    }

    /// Creates a bandwidth from megabits (10⁶ bits) per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }

    /// Returns the value in bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// Returns the value in megabits per second as a float.
    pub fn mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if this bandwidth is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` if `other > self`.
    pub fn checked_sub(self, other: Bandwidth) -> Option<Bandwidth> {
        self.0.checked_sub(other.0).map(Bandwidth)
    }

    /// Saturating subtraction (floors at zero).
    pub fn saturating_sub(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_sub(other.0))
    }

    /// Scales by a non-negative fraction, rounding down.
    ///
    /// Used to carve out the anycast partition (the paper reserves 20% of
    /// each 100 Mb/s link for anycast flows).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or not finite.
    pub fn scaled(self, fraction: f64) -> Bandwidth {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "fraction must be finite and non-negative, got {fraction}"
        );
        Bandwidth((self.0 as f64 * fraction) as u64)
    }

    /// How many flows of demand `unit` fit into this bandwidth (integer
    /// division). Returns `u64::MAX` when `unit` is zero.
    pub fn saturating_div(self, unit: Bandwidth) -> u64 {
        self.0.checked_div(unit.0).unwrap_or(u64::MAX)
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    /// # Panics
    ///
    /// Panics on underflow in debug builds (standard integer semantics).
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 - rhs.0)
    }
}

impl SubAssign for Bandwidth {
    fn sub_assign(&mut self, rhs: Bandwidth) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: u64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        Bandwidth(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}Mb/s", self.0 / 1_000_000)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{}kb/s", self.0 / 1_000)
        } else {
            write!(f, "{}b/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Bandwidth::from_kbps(64), Bandwidth::from_bps(64_000));
        assert_eq!(Bandwidth::from_mbps(100), Bandwidth::from_bps(100_000_000));
    }

    #[test]
    fn paper_anycast_partition_holds_312_flows() {
        // 20% of a 100 Mb/s link divided by 64 kb/s flows = 312 slots.
        let partition = Bandwidth::from_mbps(100).scaled(0.2);
        assert_eq!(partition, Bandwidth::from_mbps(20));
        assert_eq!(partition.saturating_div(Bandwidth::from_kbps(64)), 312);
    }

    #[test]
    fn arithmetic() {
        let a = Bandwidth::from_kbps(100);
        let b = Bandwidth::from_kbps(60);
        assert_eq!(a + b, Bandwidth::from_kbps(160));
        assert_eq!(a - b, Bandwidth::from_kbps(40));
        assert_eq!(a.checked_sub(b), Some(Bandwidth::from_kbps(40)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(b.saturating_sub(a), Bandwidth::ZERO);
        assert_eq!(a * 3, Bandwidth::from_kbps(300));
        let total: Bandwidth = [a, b, b].into_iter().sum();
        assert_eq!(total, Bandwidth::from_kbps(220));
    }

    #[test]
    fn div_by_zero_unit_is_max() {
        assert_eq!(
            Bandwidth::from_bps(5).saturating_div(Bandwidth::ZERO),
            u64::MAX
        );
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(Bandwidth::from_mbps(100).to_string(), "100Mb/s");
        assert_eq!(Bandwidth::from_kbps(64).to_string(), "64kb/s");
        assert_eq!(Bandwidth::from_bps(7).to_string(), "7b/s");
        assert_eq!(Bandwidth::ZERO.to_string(), "0b/s");
    }

    #[test]
    #[should_panic(expected = "fraction must be finite")]
    fn scaled_rejects_negative_fraction() {
        let _ = Bandwidth::from_mbps(1).scaled(-0.5);
    }
}
