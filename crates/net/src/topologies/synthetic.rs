//! Synthetic topology families for robustness ablations.

use crate::{Bandwidth, NetError, NodeId, Topology, TopologyBuilder};

/// Builds a `width × height` grid (mesh) topology.
///
/// Node `(x, y)` has id `y * width + x`; horizontal and vertical neighbours
/// are linked. Grids stress the admission algorithms with many equal-length
/// route alternatives.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(width: usize, height: usize, capacity: Bandwidth) -> Topology {
    assert!(width > 0 && height > 0, "grid dimensions must be positive");
    let mut b = TopologyBuilder::new(width * height);
    for y in 0..height {
        for x in 0..width {
            let id = (y * width + x) as u32;
            if x + 1 < width {
                b.link(NodeId::new(id), NodeId::new(id + 1), capacity)
                    .expect("grid links valid");
            }
            if y + 1 < height {
                b.link(NodeId::new(id), NodeId::new(id + width as u32), capacity)
                    .expect("grid links valid");
            }
        }
    }
    b.build()
}

/// Builds a ring of `n ≥ 3` nodes.
///
/// Rings are the adversarial case for admission control: exactly two routes
/// exist between any pair, so congestion cannot be routed around.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize, capacity: Bandwidth) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut b = TopologyBuilder::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        b.link(NodeId::new(i as u32), NodeId::new(j as u32), capacity)
            .expect("ring links valid");
    }
    b.build()
}

/// Builds a star: node 0 is the hub, nodes `1..n` are leaves.
///
/// Stars model the degenerate centralised case — every route crosses the
/// hub, so the destination-selection algorithms cannot spread load.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize, capacity: Bandwidth) -> Topology {
    assert!(n >= 2, "a star needs a hub and at least one leaf");
    let mut b = TopologyBuilder::new(n);
    for i in 1..n {
        b.link(NodeId::new(0), NodeId::new(i as u32), capacity)
            .expect("star links valid");
    }
    b.build()
}

/// Bound on re-seeded draws before [`waxman`] gives up on connectivity.
pub const WAXMAN_MAX_ATTEMPTS: u32 = 64;

/// Builds a connected Waxman random graph over `n` nodes.
///
/// Nodes are placed uniformly in the unit square by a deterministic
/// splitmix-style generator seeded with `seed`; each pair is linked with the
/// Waxman probability `α · exp(−d / (β · √2))` where `d` is Euclidean
/// distance. A raw Waxman draw can come out disconnected (it used to be
/// patched over with a spanning chain, which distorted the degree/distance
/// model *and* still left pathological parameters broken); instead the draw
/// is now checked at build time and retried with deterministically advanced
/// seeds, so the result is a faithful Waxman graph whenever one is found
/// within [`WAXMAN_MAX_ATTEMPTS`] attempts and a typed
/// [`NetError::DisconnectedTopology`] otherwise — a sweep over sparse
/// parameters reports the failure instead of panicking deep inside
/// `RouteTable::shortest_paths`.
///
/// Typical parameters: `alpha = 0.4`, `beta = 0.3`.
///
/// # Panics
///
/// Panics if `n < 2` or the parameters are not in `(0, 1]`.
pub fn waxman(
    n: usize,
    alpha: f64,
    beta: f64,
    seed: u64,
    capacity: Bandwidth,
) -> Result<Topology, NetError> {
    assert!(n >= 2, "waxman needs at least 2 nodes");
    assert!(
        alpha > 0.0 && alpha <= 1.0 && beta > 0.0 && beta <= 1.0,
        "waxman parameters must be in (0, 1]"
    );
    for attempt in 0..WAXMAN_MAX_ATTEMPTS {
        // Advance by the splitmix64 golden-ratio increment so retry seeds
        // are deterministic and decorrelated from the caller's seed line.
        let attempt_seed =
            seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let topo = waxman_draw(n, alpha, beta, attempt_seed, capacity);
        if topo.is_connected() {
            return Ok(topo);
        }
    }
    Err(NetError::DisconnectedTopology {
        attempts: WAXMAN_MAX_ATTEMPTS,
    })
}

/// One raw (possibly disconnected) Waxman draw.
fn waxman_draw(n: usize, alpha: f64, beta: f64, seed: u64, capacity: Bandwidth) -> Topology {
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next_f64 = move || {
        // splitmix64
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    let points: Vec<(f64, f64)> = (0..n).map(|_| (next_f64(), next_f64())).collect();
    let mut b = TopologyBuilder::new(n);
    let max_d = std::f64::consts::SQRT_2;
    for i in 0..n {
        for j in i + 1..n {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            let d = (dx * dx + dy * dy).sqrt();
            let p = alpha * (-d / (beta * max_d)).exp();
            if next_f64() < p {
                b.link(NodeId::new(i as u32), NodeId::new(j as u32), capacity)
                    .expect("waxman links valid");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::shortest_path;

    const CAP: Bandwidth = Bandwidth::from_mbps(100);

    #[test]
    fn grid_structure() {
        let t = grid(4, 3, CAP);
        assert_eq!(t.node_count(), 12);
        // Links: horizontal 3*3 + vertical 4*2 = 17.
        assert_eq!(t.link_count(), 17);
        assert!(t.is_connected());
        // Corner degree 2, inner degree 4.
        assert_eq!(t.degree(NodeId::new(0)), 2);
        assert_eq!(t.degree(NodeId::new(5)), 4);
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let t = grid(5, 5, CAP);
        let p = shortest_path(&t, NodeId::new(0), NodeId::new(24)).unwrap();
        assert_eq!(p.hops(), 8);
    }

    #[test]
    fn ring_structure() {
        let t = ring(6, CAP);
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.link_count(), 6);
        assert!(t.is_connected());
        assert!(t.nodes().all(|n| t.degree(n) == 2));
        // Opposite nodes are n/2 apart.
        let p = shortest_path(&t, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(p.hops(), 3);
    }

    #[test]
    fn star_structure() {
        let t = star(7, CAP);
        assert_eq!(t.link_count(), 6);
        assert_eq!(t.degree(NodeId::new(0)), 6);
        assert!(t.nodes().skip(1).all(|n| t.degree(n) == 1));
        let p = shortest_path(&t, NodeId::new(1), NodeId::new(6)).unwrap();
        assert_eq!(p.hops(), 2);
    }

    #[test]
    fn waxman_is_connected_and_deterministic() {
        let a = waxman(20, 0.4, 0.3, 42, CAP).unwrap();
        let b = waxman(20, 0.4, 0.3, 42, CAP).unwrap();
        assert!(a.is_connected());
        assert_eq!(a.link_count(), b.link_count());
        let la: Vec<_> = a.links().map(|l| (l.a(), l.b())).collect();
        let lb: Vec<_> = b.links().map(|l| (l.a(), l.b())).collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn waxman_seeds_differ() {
        let a = waxman(20, 0.4, 0.3, 1, CAP).unwrap();
        let b = waxman(20, 0.4, 0.3, 2, CAP).unwrap();
        let la: Vec<_> = a.links().map(|l| (l.a(), l.b())).collect();
        let lb: Vec<_> = b.links().map(|l| (l.a(), l.b())).collect();
        assert_ne!(la, lb, "different seeds should give different graphs");
    }

    #[test]
    fn waxman_density_grows_with_alpha() {
        let sparse = waxman(30, 0.4, 0.4, 7, CAP).unwrap();
        let dense = waxman(30, 0.9, 0.9, 7, CAP).unwrap();
        assert!(dense.link_count() > sparse.link_count());
    }

    #[test]
    fn waxman_retries_until_connected() {
        // Sparse-but-feasible parameters: many raw draws come out
        // disconnected, yet the deterministic re-seeding finds a connected
        // one within the attempt budget — and keeps finding the *same* one.
        for seed in 0..20 {
            let a = waxman(12, 0.5, 0.4, seed, CAP).unwrap();
            let b = waxman(12, 0.5, 0.4, seed, CAP).unwrap();
            assert!(a.is_connected(), "seed {seed}");
            let la: Vec<_> = a.links().map(|l| (l.a(), l.b())).collect();
            let lb: Vec<_> = b.links().map(|l| (l.a(), l.b())).collect();
            assert_eq!(la, lb, "seed {seed}");
        }
    }

    #[test]
    fn waxman_exhaustion_is_a_typed_error() {
        // alpha so small that essentially no links are drawn: every attempt
        // is disconnected, so the bounded retry reports a typed error
        // instead of letting route construction panic downstream.
        let err = waxman(10, 1e-9, 1e-3, 3, CAP).unwrap_err();
        assert_eq!(
            err,
            NetError::DisconnectedTopology {
                attempts: WAXMAN_MAX_ATTEMPTS
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        let _ = ring(2, CAP);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn empty_grid_panics() {
        let _ = grid(0, 3, CAP);
    }
}
