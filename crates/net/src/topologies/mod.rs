//! Ready-made topologies: the paper's MCI backbone plus synthetic families.
//!
//! The headline experiments run on [`mci`], a 19-node reconstruction of the
//! MCI ISP backbone of the paper's Figure 2 (see `DESIGN.md` §2 for the
//! substitution note — the figure image is not part of the source text, so
//! the adjacency is reconstructed with the same size, density and diameter).
//!
//! The synthetic families ([`grid`], [`ring`], [`star`], [`waxman`]) drive
//! the topology-robustness ablation: the paper's qualitative conclusions
//! should not depend on the particular backbone.
//!
//! The datacenter fabrics ([`fat_tree`], [`clos`]) scale the reproduction
//! past paper-size meshes — thousands of hosts behind regular switching
//! tiers, served by the on-demand
//! [`RouteOracle`](crate::RouteOracle) instead of the all-pairs table.

mod datacenter;
mod mci;
mod synthetic;

pub use datacenter::{
    clos, clos_hosts, clos_node_count, fat_tree, fat_tree_hosts, fat_tree_node_count,
};
pub use mci::{
    mci, mci_source_nodes, mci_with_capacity, MCI_GROUP_MEMBERS, MCI_LINKS, MCI_NODES, MCI_SOURCES,
};
pub use synthetic::{grid, ring, star, waxman, WAXMAN_MAX_ATTEMPTS};
