//! Ready-made topologies: the paper's MCI backbone plus synthetic families.
//!
//! The headline experiments run on [`mci`], a 19-node reconstruction of the
//! MCI ISP backbone of the paper's Figure 2 (see `DESIGN.md` §2 for the
//! substitution note — the figure image is not part of the source text, so
//! the adjacency is reconstructed with the same size, density and diameter).
//!
//! The synthetic families ([`grid`], [`ring`], [`star`], [`waxman`]) drive
//! the topology-robustness ablation: the paper's qualitative conclusions
//! should not depend on the particular backbone.

mod mci;
mod synthetic;

pub use mci::{
    mci, mci_source_nodes, mci_with_capacity, MCI_GROUP_MEMBERS, MCI_LINKS, MCI_NODES, MCI_SOURCES,
};
pub use synthetic::{grid, ring, star, waxman};
