//! Datacenter fabrics: three-tier fat trees and two-tier leaf–spine Clos.
//!
//! These are the topologies where on-demand routing pays off: a `k = 34`
//! fat tree has 11 271 nodes, so the all-pairs [`RouteTable`] would
//! materialise `node_count × group_len` paths while a typical scenario
//! only ever asks for routes from its configured source hosts — the
//! [`RouteOracle`](crate::RouteOracle) keeps exactly those resident.
//!
//! Node-id layout is documented per builder and exposed through the
//! `*_hosts` helpers so experiment configs can pick sources and anycast
//! members without re-deriving the arithmetic.
//!
//! [`RouteTable`]: crate::RouteTable

use crate::{Bandwidth, NodeId, Topology, TopologyBuilder};

/// Number of nodes in a [`fat_tree`] of parameter `k`:
/// `(k/2)²` core + `k²` pod switches + `k³/4` hosts.
pub fn fat_tree_node_count(k: usize) -> usize {
    let half = k / 2;
    half * half + k * k + k * half * half
}

/// The host node-ids of a [`fat_tree`] of parameter `k` (the last
/// `k³/4` ids, after every switch).
pub fn fat_tree_hosts(k: usize) -> Vec<NodeId> {
    let half = k / 2;
    let first = half * half + k * k;
    (first..fat_tree_node_count(k))
        .map(|i| NodeId::new(i as u32))
        .collect()
}

/// Builds the canonical three-tier fat tree of parameter `k` (k even):
/// `(k/2)²` core switches, `k` pods of `k/2` aggregation plus `k/2` edge
/// switches, and `k/2` hosts per edge switch.
///
/// Node-id layout: core switches first (`0 .. (k/2)²`), then per pod its
/// aggregation switches followed by its edge switches, then all hosts
/// (edge-major). Aggregation switch `j` of every pod uplinks to core
/// switches `j·k/2 .. (j+1)·k/2`; every pod's aggregation and edge tiers
/// are fully bipartite. All links share one `capacity` (the admission
/// ledger, not the graph, models heterogeneous load).
///
/// # Panics
///
/// Panics if `k` is odd or `< 2`.
pub fn fat_tree(k: usize, capacity: Bandwidth) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat tree parameter k must be even and >= 2"
    );
    let half = k / 2;
    let cores = half * half;
    let agg_base = |pod: usize| cores + pod * k;
    let edge_base = |pod: usize| cores + pod * k + half;
    let host_base = cores + k * k;
    let mut b = TopologyBuilder::new(fat_tree_node_count(k));
    let id = |i: usize| NodeId::new(i as u32);
    for pod in 0..k {
        for j in 0..half {
            let agg = agg_base(pod) + j;
            // Aggregation uplinks: one core group per aggregation index.
            for c in 0..half {
                b.link(id(j * half + c), id(agg), capacity)
                    .expect("fat-tree uplinks valid");
            }
            // Full bipartite aggregation <-> edge inside the pod.
            for e in 0..half {
                b.link(id(agg), id(edge_base(pod) + e), capacity)
                    .expect("fat-tree pod links valid");
            }
        }
        for e in 0..half {
            let edge = edge_base(pod) + e;
            for h in 0..half {
                let host = host_base + ((pod * half + e) * half) + h;
                b.link(id(edge), id(host), capacity)
                    .expect("fat-tree host links valid");
            }
        }
    }
    b.build()
}

/// Number of nodes in a [`clos`] fabric: `spine + leaf·(1 + hosts)`.
pub fn clos_node_count(spine: usize, leaf: usize, hosts: usize) -> usize {
    spine + leaf * (1 + hosts)
}

/// The host node-ids of a [`clos`] fabric (the last `leaf·hosts` ids).
pub fn clos_hosts(spine: usize, leaf: usize, hosts: usize) -> Vec<NodeId> {
    let first = spine + leaf;
    (first..clos_node_count(spine, leaf, hosts))
        .map(|i| NodeId::new(i as u32))
        .collect()
}

/// Builds a two-tier leaf–spine Clos fabric: every leaf switch connects
/// to every spine switch, and each leaf serves `hosts` hosts.
///
/// Node-id layout: spines `0 .. spine`, leaves `spine .. spine + leaf`,
/// then hosts leaf-major (`spine + leaf + l·hosts + h` is host `h` of
/// leaf `l`).
///
/// # Panics
///
/// Panics if any tier is empty.
pub fn clos(spine: usize, leaf: usize, hosts: usize, capacity: Bandwidth) -> Topology {
    assert!(
        spine > 0 && leaf > 0 && hosts > 0,
        "clos tiers must be non-empty"
    );
    let mut b = TopologyBuilder::new(clos_node_count(spine, leaf, hosts));
    let id = |i: usize| NodeId::new(i as u32);
    for l in 0..leaf {
        let leaf_id = spine + l;
        for s in 0..spine {
            b.link(id(s), id(leaf_id), capacity)
                .expect("clos fabric links valid");
        }
        for h in 0..hosts {
            b.link(id(leaf_id), id(spine + leaf + l * hosts + h), capacity)
                .expect("clos host links valid");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::shortest_path;

    const CAP: Bandwidth = Bandwidth::from_mbps(100);

    #[test]
    fn fat_tree_counts_match_formula() {
        let t = fat_tree(4, CAP);
        // k=4: 4 core + 16 pod switches + 16 hosts.
        assert_eq!(t.node_count(), 36);
        assert_eq!(t.node_count(), fat_tree_node_count(4));
        // Links: core-agg 16 + agg-edge 16 + edge-host 16.
        assert_eq!(t.link_count(), 48);
        assert!(t.is_connected());
        assert_eq!(fat_tree_hosts(4).len(), 16);
    }

    #[test]
    fn fat_tree_hosts_are_leaves_with_known_diameter() {
        let t = fat_tree(4, CAP);
        let hosts = fat_tree_hosts(4);
        assert!(hosts.iter().all(|&h| t.degree(h) == 1));
        // Same edge switch: 2 hops; different pods: 6 hops
        // (host-edge-agg-core-agg-edge-host).
        let p = shortest_path(&t, hosts[0], hosts[1]).unwrap();
        assert_eq!(p.hops(), 2);
        let p = shortest_path(&t, hosts[0], hosts[15]).unwrap();
        assert_eq!(p.hops(), 6);
    }

    #[test]
    fn fat_tree_scales_past_ten_thousand_nodes() {
        // The bench_pr10 size: k=34 -> 11271 nodes, buildable in-memory.
        assert_eq!(fat_tree_node_count(34), 11271);
        let t = fat_tree(10, CAP);
        assert_eq!(t.node_count(), fat_tree_node_count(10));
        assert!(t.is_connected());
    }

    #[test]
    fn clos_structure() {
        let t = clos(4, 9, 12, CAP);
        assert_eq!(t.node_count(), 4 + 9 + 9 * 12);
        assert_eq!(t.link_count(), 4 * 9 + 9 * 12);
        assert!(t.is_connected());
        let hosts = clos_hosts(4, 9, 12);
        assert_eq!(hosts.len(), 108);
        assert!(hosts.iter().all(|&h| t.degree(h) == 1));
        // Hosts on different leaves are 4 hops apart via any spine.
        let p = shortest_path(&t, hosts[0], hosts[12]).unwrap();
        assert_eq!(p.hops(), 4);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_fat_tree_panics() {
        let _ = fat_tree(5, CAP);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_clos_panics() {
        let _ = clos(0, 2, 2, CAP);
    }
}
