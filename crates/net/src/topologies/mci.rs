//! The 19-node MCI ISP backbone used in the paper's evaluation (§5.1).

use crate::{Bandwidth, NodeId, Topology, TopologyBuilder};

/// Number of nodes in the MCI backbone (§5.1: "There are 19 nodes").
pub const MCI_NODES: usize = 19;

/// The undirected links of the reconstructed MCI backbone.
///
/// The source text of the paper does not carry the Figure 2 image, so the
/// adjacency is reconstructed to match everything the paper *does*
/// publish: 19 router nodes in a sparse WAN mesh (32 links, mean degree
/// ≈ 3.4, node degrees 2–5, diameter 4), **calibrated so that the
/// Appendix-A analytical admission probabilities reproduce the paper's
/// Tables 1 and 2** — the `<ED,1>` and `SP` values at λ ∈ {20, 35, 50}
/// all land within 7×10⁻⁴ of the published numbers (see `DESIGN.md` §2
/// for the calibration procedure). Every node is a router with one
/// attached host; the anycast group and source placement below come
/// directly from §5.1.
pub const MCI_LINKS: [(u32, u32); 32] = [
    (0, 1),
    (0, 11),
    (0, 12),
    (0, 15),
    (0, 16),
    (1, 4),
    (1, 6),
    (1, 7),
    (1, 11),
    (2, 3),
    (2, 4),
    (2, 9),
    (3, 16),
    (4, 7),
    (4, 18),
    (5, 6),
    (5, 9),
    (5, 12),
    (5, 14),
    (5, 18),
    (7, 10),
    (7, 11),
    (7, 16),
    (8, 10),
    (8, 13),
    (8, 18),
    (10, 13),
    (10, 15),
    (12, 14),
    (12, 16),
    (16, 17),
    (17, 18),
];

/// Routers hosting the five anycast group members (§5.1): the hosts
/// attached to routers 0, 4, 8, 12 and 16.
pub const MCI_GROUP_MEMBERS: [u32; 5] = [0, 4, 8, 12, 16];

/// Routers whose hosts originate anycast flows (§5.1): the odd-numbered
/// routers.
pub const MCI_SOURCES: [u32; 9] = [1, 3, 5, 7, 9, 11, 13, 15, 17];

/// Builds the MCI backbone with the paper's 100 Mb/s link capacity.
///
/// The anycast partition (20% of each link) is carved out separately by
/// [`LinkStateTable::with_uniform_fraction`](crate::LinkStateTable::with_uniform_fraction).
///
/// ```rust
/// let topo = anycast_net::topologies::mci();
/// assert_eq!(topo.node_count(), 19);
/// assert!(topo.is_connected());
/// ```
pub fn mci() -> Topology {
    mci_with_capacity(Bandwidth::from_mbps(100))
}

/// Builds the MCI backbone with a custom uniform link capacity.
pub fn mci_with_capacity(capacity: Bandwidth) -> Topology {
    let mut b = TopologyBuilder::new(MCI_NODES);
    b.links_uniform(MCI_LINKS, capacity)
        .expect("static MCI link list is valid");
    b.build()
}

/// The paper's source routers as `NodeId`s.
pub fn mci_source_nodes() -> Vec<NodeId> {
    MCI_SOURCES.iter().map(|&n| NodeId::new(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::bfs_tree;
    use crate::{AnycastGroup, RouteTable};

    #[test]
    fn matches_paper_description() {
        let topo = mci();
        assert_eq!(topo.node_count(), 19);
        assert_eq!(topo.link_count(), 32);
        assert!(topo.is_connected());
        for l in topo.links() {
            assert_eq!(l.capacity(), Bandwidth::from_mbps(100));
        }
    }

    #[test]
    fn degrees_are_wan_like() {
        let topo = mci();
        let degrees: Vec<usize> = topo.nodes().map(|n| topo.degree(n)).collect();
        let total: usize = degrees.iter().sum();
        assert_eq!(total, 2 * topo.link_count());
        assert!(degrees.iter().all(|&d| (2..=5).contains(&d)));
        let mean = total as f64 / topo.node_count() as f64;
        assert!((3.0..4.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn diameter_is_small() {
        let topo = mci();
        let mut diameter = 0;
        for s in topo.nodes() {
            let tree = bfs_tree(&topo, s);
            for d in topo.nodes() {
                diameter = diameter.max(tree.distance(d).unwrap());
            }
        }
        assert!(
            diameter <= 6,
            "diameter {diameter} too large for a backbone"
        );
        assert!(
            diameter >= 3,
            "diameter {diameter} too small to be interesting"
        );
    }

    #[test]
    fn group_members_and_sources_are_disjoint_valid_nodes() {
        let topo = mci();
        for &m in &MCI_GROUP_MEMBERS {
            assert!(topo.contains_node(NodeId::new(m)));
            assert_eq!(m % 2, 0, "members sit at even routers");
        }
        for &s in &MCI_SOURCES {
            assert!(topo.contains_node(NodeId::new(s)));
            assert_eq!(s % 2, 1, "sources sit at odd routers");
        }
    }

    #[test]
    fn every_source_reaches_every_member() {
        let topo = mci();
        let group = AnycastGroup::new("A", MCI_GROUP_MEMBERS.map(NodeId::new)).unwrap();
        let table = RouteTable::shortest_paths(&topo, &group);
        for s in mci_source_nodes() {
            let dists = table.distances(s).unwrap();
            assert_eq!(dists.len(), 5);
            assert!(dists.iter().all(|&d| d >= 1), "sources are not members");
            // Members are spread: some member is close, some far.
            let min = dists.iter().min().unwrap();
            let max = dists.iter().max().unwrap();
            assert!(max > min, "from {s} all members equidistant: {dists:?}");
        }
    }

    #[test]
    fn custom_capacity_respected() {
        let topo = mci_with_capacity(Bandwidth::from_mbps(10));
        assert!(topo
            .links()
            .all(|l| l.capacity() == Bandwidth::from_mbps(10)));
    }
}
