//! The link-capacity ledger: available bandwidth per link, plus link and
//! node up/down state for the fault-injection extension.

use crate::{Bandwidth, LinkId, NetError, NodeId, Path, Topology};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Links per shard of the striped ledger view. Each shard carries its own
/// last-touched stamp, so a reader scanning many links (summary, telemetry
/// sampling, route-bandwidth refresh) can skip whole stripes whose stamp
/// has not advanced past the version it last saw. 64 keeps a shard's
/// snapshots within a cache line or two while still collapsing the paper
/// topologies (tens of links) into one or two stripes.
pub const LINKS_PER_SHARD: usize = 64;

fn shard_count_for(links: usize) -> usize {
    links.div_ceil(LINKS_PER_SHARD)
}

/// Read-only snapshot of one link's capacity accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSnapshot {
    /// Capacity usable by anycast flows (the anycast partition of §5.1).
    pub capacity: Bandwidth,
    /// Bandwidth currently reserved by admitted flows.
    pub reserved: Bandwidth,
    /// Number of flows currently holding a reservation across this link.
    pub flows: u32,
    /// Bandwidth held by in-flight two-phase setups (PATH walks that have
    /// crossed this link but whose RESV has not confirmed yet). Holds count
    /// against availability so concurrent setups race honestly, but are not
    /// confirmed reservations: an unconfirmed hold expires and returns its
    /// bandwidth.
    pub held: Bandwidth,
    /// Number of pending holds on this link.
    pub holds: u32,
    /// `true` while the link is administratively or physically down
    /// (fault-injection extension; the paper assumes a fault-free network).
    pub failed: bool,
}

impl LinkSnapshot {
    /// Remaining capacity — the paper's available bandwidth `AB_l`.
    /// A failed link has no available bandwidth. Pending holds count as
    /// taken: a concurrent setup must not double-book bandwidth another
    /// setup has already claimed mid-signalling.
    pub fn available(&self) -> Bandwidth {
        if self.failed {
            Bandwidth::ZERO
        } else {
            self.capacity
                .saturating_sub(self.reserved)
                .saturating_sub(self.held)
        }
    }

    /// Fraction of the anycast partition in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity.is_zero() {
            0.0
        } else {
            self.reserved.bps() as f64 / self.capacity.bps() as f64
        }
    }
}

/// Whole-table aggregate of the ledger, for operational snapshots (the
/// admission daemon's `stats` endpoint) — one pass over every link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSummary {
    /// Links tracked by the ledger.
    pub links: usize,
    /// Links currently (effectively) down.
    pub failed_links: usize,
    /// Total anycast-partition capacity, bit/s.
    pub capacity_bps: u64,
    /// Total reserved bandwidth, bit/s.
    pub reserved_bps: u64,
    /// Total bandwidth held by pending (unconfirmed) setups, bit/s.
    pub pending_bps: u64,
}

/// Mutable per-link bandwidth bookkeeping for one simulation run.
///
/// Tracks, for every link, how much of the anycast partition is reserved by
/// active flows. `AB_l` of the paper is [`available`](Self::available). The
/// ledger enforces the two invariants the admission control relies on:
/// reservations never exceed capacity, and releases never exceed
/// reservations.
///
/// Path-level operations ([`reserve_path`](Self::reserve_path)) are
/// all-or-nothing: on failure the ledger is left exactly as it was.
/// Link and node up/down state is tracked separately from the capacity
/// accounting: `LinkSnapshot::failed` is the *effective* state (a link is
/// down if it failed itself **or** either endpoint node is down), while
/// the table remembers the explicit link faults so that restoring a node
/// does not silently resurrect a link that is still broken on its own.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkStateTable {
    states: Vec<LinkSnapshot>,
    /// Explicit per-link faults (`fail_link`), independent of node state.
    link_failed: Vec<bool>,
    /// Per-node faults (`fail_node`); a down node downs every incident link.
    node_failed: Vec<bool>,
    /// Link endpoints, captured from the topology at construction.
    endpoints: Vec<(NodeId, NodeId)>,
    /// Monotone mutation counter: bumped by every operation that can change
    /// some link's available bandwidth. Lets callers cache derived
    /// quantities (route bottlenecks, feasibility verdicts) and invalidate
    /// them exactly when a relevant link moved.
    #[serde(default)]
    version: u64,
    /// Per-link last-touched version (parallel to `states`): `stamps[i]` is
    /// the `version` at which link `i`'s availability last changed.
    #[serde(default)]
    stamps: Vec<u64>,
    /// Per-shard last-touched version: `shard_stamps[s]` upper-bounds the
    /// stamp of every link in shard `s` (links `s*LINKS_PER_SHARD ..`), so
    /// an unchanged shard stamp proves the whole stripe is unchanged.
    #[serde(default)]
    shard_stamps: Vec<u64>,
}

impl LinkStateTable {
    /// Builds a ledger where every link's anycast partition is
    /// `fraction` of its physical capacity.
    ///
    /// The paper reserves 20% of each 100 Mb/s link for anycast flows, so
    /// `with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2)` — or
    /// simply `fraction = 0.2` of the capacities already stored in the
    /// topology — reproduces the experimental setup. The `default_capacity`
    /// argument is used for links whose topology capacity is zero.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or not finite.
    pub fn with_uniform_fraction(
        topo: &Topology,
        default_capacity: Bandwidth,
        fraction: f64,
    ) -> Self {
        let states = topo
            .links()
            .map(|l| {
                let base = if l.capacity().is_zero() {
                    default_capacity
                } else {
                    l.capacity()
                };
                LinkSnapshot {
                    capacity: base.scaled(fraction),
                    reserved: Bandwidth::ZERO,
                    flows: 0,
                    held: Bandwidth::ZERO,
                    holds: 0,
                    failed: false,
                }
            })
            .collect();
        let endpoints = topo.links().map(|l| (l.a(), l.b())).collect();
        LinkStateTable {
            states,
            link_failed: vec![false; topo.link_count()],
            node_failed: vec![false; topo.node_count()],
            endpoints,
            version: 0,
            stamps: vec![0; topo.link_count()],
            shard_stamps: vec![0; shard_count_for(topo.link_count())],
        }
    }

    /// Builds a ledger using each link's full topology capacity.
    pub fn from_topology(topo: &Topology) -> Self {
        Self::with_uniform_fraction(topo, Bandwidth::ZERO, 1.0)
    }

    /// Number of links tracked.
    pub fn link_count(&self) -> usize {
        self.states.len()
    }

    /// Snapshot of one link.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownLink`] if `link` is out of range.
    pub fn snapshot(&self, link: LinkId) -> Result<LinkSnapshot, NetError> {
        self.states
            .get(link.index())
            .copied()
            .ok_or(NetError::UnknownLink(link))
    }

    /// Available bandwidth `AB_l` of a link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn available(&self, link: LinkId) -> Bandwidth {
        self.states[link.index()].available()
    }

    /// Capacity of the anycast partition of a link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn capacity(&self, link: LinkId) -> Bandwidth {
        self.states[link.index()].capacity
    }

    /// The current mutation version: strictly increases whenever any
    /// link's availability (or fault state) changes. Equal versions imply
    /// an identical availability picture.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The version at which `link`'s availability last changed (0 if it
    /// was never touched).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn stamp(&self, link: LinkId) -> u64 {
        self.stamps[link.index()]
    }

    /// The newest per-link stamp along `path` — a cached quantity derived
    /// from this path's links (e.g. its bottleneck bandwidth) is still
    /// exact iff `max_stamp_on(path)` has not advanced past the version at
    /// which it was computed. A trivial path reports 0: nothing it depends
    /// on can ever change.
    pub fn max_stamp_on(&self, path: &Path) -> u64 {
        path.links()
            .iter()
            .map(|l| self.stamps[l.index()])
            .max()
            .unwrap_or(0)
    }

    /// Whether any link along `path` was touched after `epoch`. Screens at
    /// shard granularity first: a shard stamp upper-bounds every member
    /// link's stamp, so stripes that have not moved past `epoch` are
    /// skipped without reading a single per-link stamp. Equivalent to
    /// `max_stamp_on(path) > epoch`.
    pub fn any_stamp_on_after(&self, path: &Path, epoch: u64) -> bool {
        path.links().iter().any(|l| {
            self.shard_stamps[l.index() / LINKS_PER_SHARD] > epoch && self.stamps[l.index()] > epoch
        })
    }

    /// Number of shards in the striped view (`⌈links / LINKS_PER_SHARD⌉`).
    pub fn shard_count(&self) -> usize {
        self.shard_stamps.len()
    }

    /// The shard a link belongs to.
    pub fn shard_of(link: LinkId) -> usize {
        link.index() / LINKS_PER_SHARD
    }

    /// The version at which any link in `shard` last changed (0 if the
    /// whole stripe was never touched).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    pub fn shard_stamp(&self, shard: usize) -> u64 {
        self.shard_stamps[shard]
    }

    /// The link-index range covered by `shard`. The final shard may be
    /// shorter than [`LINKS_PER_SHARD`].
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    pub fn shard_range(&self, shard: usize) -> Range<usize> {
        assert!(
            shard < self.shard_stamps.len(),
            "shard {shard} out of range"
        );
        let start = shard * LINKS_PER_SHARD;
        start..(start + LINKS_PER_SHARD).min(self.states.len())
    }

    /// A read-only, shard-aware view of the ledger. The view is `Copy` and
    /// `Sync`, so it is what batch evaluation fans out across worker
    /// threads: every parallel reader sees the same frozen version, and the
    /// borrow checker guarantees no mutation can interleave while any view
    /// is alive.
    pub fn sharded(&self) -> ShardedSnapshot<'_> {
        ShardedSnapshot { table: self }
    }

    /// Records that `link_index`'s availability changed.
    fn touch(&mut self, link_index: usize) {
        self.version += 1;
        self.stamps[link_index] = self.version;
        self.shard_stamps[link_index / LINKS_PER_SHARD] = self.version;
    }

    /// Reserves `bw` on a single link.
    ///
    /// # Errors
    ///
    /// [`NetError::InsufficientBandwidth`] if less than `bw` is available;
    /// [`NetError::UnknownLink`] if the link is out of range.
    pub fn reserve(&mut self, link: LinkId, bw: Bandwidth) -> Result<(), NetError> {
        let state = self
            .states
            .get_mut(link.index())
            .ok_or(NetError::UnknownLink(link))?;
        let available = state.available();
        if bw > available {
            return Err(NetError::InsufficientBandwidth {
                link,
                demanded: bw,
                available,
            });
        }
        state.reserved += bw;
        state.flows += 1;
        self.touch(link.index());
        Ok(())
    }

    /// Releases `bw` previously reserved on a single link.
    ///
    /// # Errors
    ///
    /// [`NetError::ReleaseUnderflow`] if `bw` exceeds the reserved amount;
    /// [`NetError::UnknownLink`] if the link is out of range.
    pub fn release(&mut self, link: LinkId, bw: Bandwidth) -> Result<(), NetError> {
        let state = self
            .states
            .get_mut(link.index())
            .ok_or(NetError::UnknownLink(link))?;
        if bw > state.reserved || state.flows == 0 {
            return Err(NetError::ReleaseUnderflow {
                link,
                released: bw,
                reserved: state.reserved,
            });
        }
        state.reserved -= bw;
        state.flows -= 1;
        self.touch(link.index());
        Ok(())
    }

    /// Places a pending hold of `bw` on a link (a two-phase PATH message
    /// claiming bandwidth it has not confirmed yet).
    ///
    /// Holds reduce [`available`](Self::available) exactly like confirmed
    /// reservations, so overlapping setups contend for the same capacity,
    /// but they live in a separate ledger column: an unconfirmed hold is
    /// released (timeout, RESV_ERR) or committed (RESV) — never leaked.
    ///
    /// # Errors
    ///
    /// [`NetError::InsufficientBandwidth`] if less than `bw` is available;
    /// [`NetError::UnknownLink`] if the link is out of range.
    pub fn place_hold(&mut self, link: LinkId, bw: Bandwidth) -> Result<(), NetError> {
        let state = self
            .states
            .get_mut(link.index())
            .ok_or(NetError::UnknownLink(link))?;
        let available = state.available();
        if bw > available {
            return Err(NetError::InsufficientBandwidth {
                link,
                demanded: bw,
                available,
            });
        }
        state.held += bw;
        state.holds += 1;
        self.touch(link.index());
        Ok(())
    }

    /// Releases a pending hold without confirming it (setup timed out or a
    /// RESV_ERR retraced the route).
    ///
    /// # Errors
    ///
    /// [`NetError::ReleaseUnderflow`] if `bw` exceeds the held amount;
    /// [`NetError::UnknownLink`] if the link is out of range.
    pub fn release_hold(&mut self, link: LinkId, bw: Bandwidth) -> Result<(), NetError> {
        let state = self
            .states
            .get_mut(link.index())
            .ok_or(NetError::UnknownLink(link))?;
        if bw > state.held || state.holds == 0 {
            return Err(NetError::ReleaseUnderflow {
                link,
                released: bw,
                reserved: state.held,
            });
        }
        state.held -= bw;
        state.holds -= 1;
        self.touch(link.index());
        Ok(())
    }

    /// Confirms a pending hold, converting it into a reserved flow (the
    /// RESV leg of the two-phase exchange). The bandwidth moves from the
    /// hold column to the reservation column atomically — availability is
    /// unchanged by the commit itself.
    ///
    /// # Errors
    ///
    /// [`NetError::ReleaseUnderflow`] if `bw` exceeds the held amount;
    /// [`NetError::UnknownLink`] if the link is out of range.
    pub fn commit_hold(&mut self, link: LinkId, bw: Bandwidth) -> Result<(), NetError> {
        let state = self
            .states
            .get_mut(link.index())
            .ok_or(NetError::UnknownLink(link))?;
        if bw > state.held || state.holds == 0 {
            return Err(NetError::ReleaseUnderflow {
                link,
                released: bw,
                reserved: state.held,
            });
        }
        state.held -= bw;
        state.holds -= 1;
        state.reserved += bw;
        state.flows += 1;
        // Availability is unchanged by the commit itself, but the hold and
        // reservation columns both moved; stamp conservatively so any
        // cached per-column view invalidates too.
        self.touch(link.index());
        Ok(())
    }

    /// Total bandwidth held by pending (unconfirmed) setups across all
    /// links. Zero whenever no two-phase signalling is in flight — the
    /// end-of-run leak-freedom invariant checks exactly this.
    pub fn total_pending(&self) -> Bandwidth {
        self.states.iter().map(|s| s.held).sum()
    }

    /// Checks whether `bw` is available on every link of `path` without
    /// reserving anything. Returns the first bottleneck link on failure.
    pub fn check_path(&self, path: &Path, bw: Bandwidth) -> Result<(), LinkId> {
        for link in path.links() {
            if self.available(*link) < bw {
                return Err(*link);
            }
        }
        Ok(())
    }

    /// Atomically reserves `bw` on every link of `path`.
    ///
    /// All-or-nothing: if any link lacks capacity, nothing is reserved.
    /// A trivial path reserves nothing and always succeeds.
    ///
    /// # Errors
    ///
    /// [`NetError::InsufficientBandwidth`] naming the first bottleneck link.
    pub fn reserve_path(&mut self, path: &Path, bw: Bandwidth) -> Result<(), NetError> {
        if let Err(link) = self.check_path(path, bw) {
            return Err(NetError::InsufficientBandwidth {
                link,
                demanded: bw,
                available: self.available(link),
            });
        }
        for link in path.links() {
            self.reserve(*link, bw)
                .expect("checked availability above; reservation cannot fail");
        }
        Ok(())
    }

    /// Releases `bw` on every link of `path`.
    ///
    /// # Errors
    ///
    /// [`NetError::ReleaseUnderflow`] if any link holds less than `bw`;
    /// links earlier in the path are released before the error surfaces, so
    /// callers should treat this as a logic bug, not a recoverable state.
    pub fn release_path(&mut self, path: &Path, bw: Bandwidth) -> Result<(), NetError> {
        for link in path.links() {
            self.release(*link, bw)?;
        }
        Ok(())
    }

    /// Minimum available bandwidth along a path — the paper's *route
    /// bandwidth* `B_i = min_{l ∈ r} AB_l` (eq. 11) used by the WD/D+B
    /// destination-selection algorithm.
    ///
    /// A trivial path has unbounded route bandwidth; we report
    /// `Bandwidth::from_bps(u64::MAX)` in that case.
    pub fn min_available_on(&self, path: &Path) -> Bandwidth {
        path.links()
            .iter()
            .map(|l| self.available(*l))
            .min()
            .unwrap_or(Bandwidth::from_bps(u64::MAX))
    }

    /// Iterates over `(LinkId, LinkSnapshot)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LinkId, LinkSnapshot)> + '_ {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (LinkId::new(i as u32), *s))
    }

    /// Total reserved bandwidth across all links (a congestion indicator).
    pub fn total_reserved(&self) -> Bandwidth {
        self.states.iter().map(|s| s.reserved).sum()
    }

    /// Aggregates the whole ledger into a [`LinkSummary`] — one pass over
    /// every link, folded shard by shard through the striped view.
    pub fn summary(&self) -> LinkSummary {
        self.sharded().summary()
    }

    /// Number of links with zero available bandwidth for a demand of `bw`.
    pub fn saturated_links(&self, bw: Bandwidth) -> usize {
        self.sharded().saturated_links(bw)
    }

    /// Marks a link as failed (fault-injection extension, beyond the
    /// paper's fault-free assumption in §3).
    ///
    /// While failed the link reports zero available bandwidth, so every
    /// new admission across it is rejected. Existing reservations remain
    /// recorded — the flows holding them are broken in reality, and it is
    /// the caller's policy whether to tear them down (releasing across a
    /// failed link works normally).
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownLink`] if `link` is out of range.
    pub fn fail_link(&mut self, link: LinkId) -> Result<(), NetError> {
        let i = link.index();
        if i >= self.states.len() {
            return Err(NetError::UnknownLink(link));
        }
        self.link_failed[i] = true;
        self.recompute_effective(i);
        Ok(())
    }

    /// Brings a failed link back into service. If an endpoint node is
    /// still down, the link stays effectively down until the node returns.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownLink`] if `link` is out of range.
    pub fn restore_link(&mut self, link: LinkId) -> Result<(), NetError> {
        let i = link.index();
        if i >= self.states.len() {
            return Err(NetError::UnknownLink(link));
        }
        self.link_failed[i] = false;
        self.recompute_effective(i);
        Ok(())
    }

    /// Marks a node as failed (crashed router / anycast server host).
    ///
    /// Every link incident to the node becomes effectively down: new
    /// admissions across it are rejected, while existing reservations
    /// remain recorded for the caller's teardown policy, exactly as with
    /// [`fail_link`](Self::fail_link).
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`] if `node` is out of range.
    pub fn fail_node(&mut self, node: NodeId) -> Result<(), NetError> {
        let n = node.index();
        if n >= self.node_failed.len() {
            return Err(NetError::UnknownNode(node));
        }
        self.node_failed[n] = true;
        self.recompute_incident(node);
        Ok(())
    }

    /// Brings a failed node back into service. Incident links recover
    /// unless they carry an explicit link fault of their own (or their
    /// other endpoint is still down).
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`] if `node` is out of range.
    pub fn restore_node(&mut self, node: NodeId) -> Result<(), NetError> {
        let n = node.index();
        if n >= self.node_failed.len() {
            return Err(NetError::UnknownNode(node));
        }
        self.node_failed[n] = false;
        self.recompute_incident(node);
        Ok(())
    }

    /// Whether a node is currently failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_node_failed(&self, node: NodeId) -> bool {
        self.node_failed[node.index()]
    }

    /// Whether a link is currently (effectively) failed — down itself or
    /// attached to a down node.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn is_failed(&self, link: LinkId) -> bool {
        self.states[link.index()].failed
    }

    /// Number of links currently (effectively) down.
    pub fn failed_link_count(&self) -> usize {
        self.states.iter().filter(|s| s.failed).count()
    }

    /// Fraction of links currently operational, in `[0, 1]` — the
    /// instantaneous network availability the fault metrics integrate.
    /// An empty ledger reports full availability.
    pub fn operational_fraction(&self) -> f64 {
        if self.states.is_empty() {
            return 1.0;
        }
        1.0 - self.failed_link_count() as f64 / self.states.len() as f64
    }

    fn recompute_effective(&mut self, link_index: usize) {
        let (a, b) = self.endpoints[link_index];
        let failed = self.link_failed[link_index]
            || self.node_failed[a.index()]
            || self.node_failed[b.index()];
        if self.states[link_index].failed != failed {
            self.states[link_index].failed = failed;
            self.touch(link_index);
        }
    }

    fn recompute_incident(&mut self, node: NodeId) {
        for i in 0..self.states.len() {
            let (a, b) = self.endpoints[i];
            if a == node || b == node {
                self.recompute_effective(i);
            }
        }
    }

    /// Clears all reservations and failures (link and node), returning
    /// the ledger to its initial state.
    pub fn reset(&mut self) {
        for s in &mut self.states {
            s.reserved = Bandwidth::ZERO;
            s.flows = 0;
            s.held = Bandwidth::ZERO;
            s.holds = 0;
            s.failed = false;
        }
        self.link_failed.fill(false);
        self.node_failed.fill(false);
        // The version stays monotone across a reset: every link's
        // availability (potentially) changed, so stamp them all.
        self.version += 1;
        self.stamps.fill(self.version);
        self.shard_stamps.fill(self.version);
    }
}

/// Read-only, shard-aware view of a [`LinkStateTable`], obtained from
/// [`LinkStateTable::sharded`].
///
/// The view pins one version of the ledger for its whole lifetime: it
/// holds a shared borrow, so no mutation can interleave while any copy is
/// alive, and every copy observes the identical availability picture.
/// That makes it the unit of work for parallel batch evaluation — workers
/// each get a `Copy` of the view, read whichever stripes they need, and
/// the sequential commit loop regains the `&mut` only after every view is
/// dropped.
///
/// Whole-table scans ([`summary`](Self::summary),
/// [`saturated_links`](Self::saturated_links), shard iteration) walk the
/// ledger stripe by stripe in ascending shard order, which is exactly
/// ascending link order — so shard-aware readers observe the same sequence
/// as a flat scan, and the stripes exist purely to let stamp-based readers
/// skip unchanged ranges.
#[derive(Debug, Clone, Copy)]
pub struct ShardedSnapshot<'a> {
    table: &'a LinkStateTable,
}

impl<'a> ShardedSnapshot<'a> {
    /// The ledger version this view pins.
    pub fn version(&self) -> u64 {
        self.table.version
    }

    /// Number of links tracked.
    pub fn link_count(&self) -> usize {
        self.table.states.len()
    }

    /// Number of shards (`⌈links / LINKS_PER_SHARD⌉`).
    pub fn shard_count(&self) -> usize {
        self.table.shard_stamps.len()
    }

    /// The version at which any link in `shard` last changed.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    pub fn shard_stamp(&self, shard: usize) -> u64 {
        self.table.shard_stamps[shard]
    }

    /// Iterates one stripe's `(LinkId, LinkSnapshot)` pairs in link order.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    pub fn iter_shard(&self, shard: usize) -> impl Iterator<Item = (LinkId, LinkSnapshot)> + 'a {
        let range = self.table.shard_range(shard);
        let states = &self.table.states[range.clone()];
        states
            .iter()
            .enumerate()
            .map(move |(i, s)| (LinkId::new((range.start + i) as u32), *s))
    }

    /// Available bandwidth `AB_l` of a link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn available(&self, link: LinkId) -> Bandwidth {
        self.table.available(link)
    }

    /// Minimum available bandwidth along a path, as
    /// [`LinkStateTable::min_available_on`].
    pub fn min_available_on(&self, path: &Path) -> Bandwidth {
        self.table.min_available_on(path)
    }

    /// Aggregates the ledger into a [`LinkSummary`], folding shard by
    /// shard. Identical to a flat scan: stripes partition the link range
    /// in ascending order.
    pub fn summary(&self) -> LinkSummary {
        let mut s = LinkSummary {
            links: self.table.states.len(),
            failed_links: 0,
            capacity_bps: 0,
            reserved_bps: 0,
            pending_bps: 0,
        };
        for shard in 0..self.shard_count() {
            for state in &self.table.states[self.table.shard_range(shard)] {
                s.failed_links += usize::from(state.failed);
                s.capacity_bps += state.capacity.bps();
                s.reserved_bps += state.reserved.bps();
                s.pending_bps += state.held.bps();
            }
        }
        s
    }

    /// Number of links with less than `bw` available, folded shard by
    /// shard.
    pub fn saturated_links(&self, bw: Bandwidth) -> usize {
        (0..self.shard_count())
            .map(|shard| {
                self.table.states[self.table.shard_range(shard)]
                    .iter()
                    .filter(|s| s.available() < bw)
                    .count()
            })
            .sum()
    }

    /// The underlying table, for readers that need its full read-only API
    /// (e.g. the residual-capacity route search). The returned borrow has
    /// the view's lifetime, so the no-interleaved-mutation guarantee
    /// carries over.
    pub fn table(&self) -> &'a LinkStateTable {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, TopologyBuilder};

    fn line4() -> (Topology, Path) {
        let mut b = TopologyBuilder::new(4);
        b.links_uniform([(0, 1), (1, 2), (2, 3)], Bandwidth::from_mbps(100))
            .unwrap();
        let topo = b.build();
        let path = Path::new(
            &topo,
            (0..4).map(NodeId::new).collect(),
            (0..3).map(LinkId::new).collect(),
        )
        .unwrap();
        (topo, path)
    }

    #[test]
    fn partition_fraction_applied() {
        let (topo, _) = line4();
        let table = LinkStateTable::with_uniform_fraction(&topo, Bandwidth::ZERO, 0.2);
        assert_eq!(table.capacity(LinkId::new(0)), Bandwidth::from_mbps(20));
        assert_eq!(table.available(LinkId::new(0)), Bandwidth::from_mbps(20));
    }

    #[test]
    fn reserve_and_release_roundtrip() {
        let (topo, path) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        let before = table.snapshot(LinkId::new(1)).unwrap();
        table.reserve_path(&path, Bandwidth::from_kbps(64)).unwrap();
        assert_eq!(table.snapshot(LinkId::new(1)).unwrap().flows, 1);
        table.release_path(&path, Bandwidth::from_kbps(64)).unwrap();
        assert_eq!(table.snapshot(LinkId::new(1)).unwrap(), before);
    }

    #[test]
    fn reserve_path_is_atomic_on_failure() {
        let (topo, path) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        // Saturate the middle link.
        table
            .reserve(LinkId::new(1), Bandwidth::from_mbps(100))
            .unwrap();
        let err = table
            .reserve_path(&path, Bandwidth::from_kbps(64))
            .unwrap_err();
        assert!(matches!(
            err,
            NetError::InsufficientBandwidth {
                link,
                ..
            } if link == LinkId::new(1)
        ));
        // Links 0 and 2 must be untouched.
        assert_eq!(table.available(LinkId::new(0)), Bandwidth::from_mbps(100));
        assert_eq!(table.available(LinkId::new(2)), Bandwidth::from_mbps(100));
    }

    #[test]
    fn release_underflow_detected() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        let err = table
            .release(LinkId::new(0), Bandwidth::from_bps(1))
            .unwrap_err();
        assert!(matches!(err, NetError::ReleaseUnderflow { .. }));
    }

    #[test]
    fn min_available_is_bottleneck() {
        let (topo, path) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table
            .reserve(LinkId::new(1), Bandwidth::from_mbps(60))
            .unwrap();
        assert_eq!(table.min_available_on(&path), Bandwidth::from_mbps(40));
    }

    #[test]
    fn trivial_path_always_reservable() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        let p = Path::trivial(NodeId::new(2));
        table
            .reserve_path(&p, Bandwidth::from_mbps(10_000))
            .unwrap();
        assert_eq!(table.total_reserved(), Bandwidth::ZERO);
        assert_eq!(table.min_available_on(&p), Bandwidth::from_bps(u64::MAX));
    }

    #[test]
    fn check_path_names_first_bottleneck() {
        let (topo, path) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table
            .reserve(LinkId::new(2), Bandwidth::from_mbps(100))
            .unwrap();
        assert_eq!(
            table.check_path(&path, Bandwidth::from_bps(1)),
            Err(LinkId::new(2))
        );
    }

    #[test]
    fn utilization_and_saturation() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table
            .reserve(LinkId::new(0), Bandwidth::from_mbps(50))
            .unwrap();
        let snap = table.snapshot(LinkId::new(0)).unwrap();
        assert!((snap.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(table.saturated_links(Bandwidth::from_mbps(60)), 1);
        assert_eq!(table.saturated_links(Bandwidth::from_mbps(10)), 0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let (topo, path) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table.reserve_path(&path, Bandwidth::from_mbps(3)).unwrap();
        table.reset();
        assert_eq!(table.total_reserved(), Bandwidth::ZERO);
        for (_, s) in table.iter() {
            assert_eq!(s.flows, 0);
        }
    }

    #[test]
    fn unknown_link_errors() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        assert!(matches!(
            table.reserve(LinkId::new(50), Bandwidth::ZERO),
            Err(NetError::UnknownLink(_))
        ));
        assert!(matches!(
            table.snapshot(LinkId::new(50)),
            Err(NetError::UnknownLink(_))
        ));
    }

    #[test]
    fn zero_capacity_link_utilization_is_zero() {
        let snap = LinkSnapshot {
            capacity: Bandwidth::ZERO,
            reserved: Bandwidth::ZERO,
            flows: 0,
            held: Bandwidth::ZERO,
            holds: 0,
            failed: false,
        };
        assert_eq!(snap.utilization(), 0.0);
    }

    #[test]
    fn holds_reduce_availability_and_release_restores_it() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        let l = LinkId::new(0);
        table.place_hold(l, Bandwidth::from_mbps(30)).unwrap();
        assert_eq!(table.available(l), Bandwidth::from_mbps(70));
        assert_eq!(table.total_pending(), Bandwidth::from_mbps(30));
        let snap = table.snapshot(l).unwrap();
        assert_eq!(snap.holds, 1);
        assert_eq!(snap.reserved, Bandwidth::ZERO);
        table.release_hold(l, Bandwidth::from_mbps(30)).unwrap();
        assert_eq!(table.available(l), Bandwidth::from_mbps(100));
        assert_eq!(table.total_pending(), Bandwidth::ZERO);
    }

    #[test]
    fn concurrent_holds_race_for_the_same_capacity() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        let l = LinkId::new(1);
        table.place_hold(l, Bandwidth::from_mbps(60)).unwrap();
        // A second in-flight setup sees the held bandwidth as taken.
        let err = table.place_hold(l, Bandwidth::from_mbps(60)).unwrap_err();
        assert!(matches!(
            err,
            NetError::InsufficientBandwidth { available, .. }
                if available == Bandwidth::from_mbps(40)
        ));
        // A plain reservation is blocked by the hold too.
        assert!(table.reserve(l, Bandwidth::from_mbps(50)).is_err());
    }

    #[test]
    fn commit_hold_converts_to_reservation_without_changing_availability() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        let l = LinkId::new(2);
        table.place_hold(l, Bandwidth::from_mbps(25)).unwrap();
        let before = table.available(l);
        table.commit_hold(l, Bandwidth::from_mbps(25)).unwrap();
        assert_eq!(table.available(l), before);
        let snap = table.snapshot(l).unwrap();
        assert_eq!(snap.reserved, Bandwidth::from_mbps(25));
        assert_eq!(snap.flows, 1);
        assert_eq!(snap.held, Bandwidth::ZERO);
        assert_eq!(snap.holds, 0);
        assert_eq!(table.total_pending(), Bandwidth::ZERO);
        // The committed flow releases like any other reservation.
        table.release(l, Bandwidth::from_mbps(25)).unwrap();
        assert_eq!(table.available(l), Bandwidth::from_mbps(100));
    }

    #[test]
    fn hold_underflow_and_unknown_link_detected() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        assert!(matches!(
            table.release_hold(LinkId::new(0), Bandwidth::from_bps(1)),
            Err(NetError::ReleaseUnderflow { .. })
        ));
        assert!(matches!(
            table.commit_hold(LinkId::new(0), Bandwidth::from_bps(1)),
            Err(NetError::ReleaseUnderflow { .. })
        ));
        assert!(matches!(
            table.place_hold(LinkId::new(50), Bandwidth::ZERO),
            Err(NetError::UnknownLink(_))
        ));
    }

    #[test]
    fn failed_link_rejects_holds_and_reset_clears_them() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table.fail_link(LinkId::new(0)).unwrap();
        assert!(table
            .place_hold(LinkId::new(0), Bandwidth::from_bps(1))
            .is_err());
        table.restore_link(LinkId::new(0)).unwrap();
        table
            .place_hold(LinkId::new(0), Bandwidth::from_mbps(5))
            .unwrap();
        table.reset();
        assert_eq!(table.total_pending(), Bandwidth::ZERO);
        assert_eq!(table.snapshot(LinkId::new(0)).unwrap().holds, 0);
    }

    #[test]
    fn failed_link_blocks_new_reservations() {
        let (topo, path) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table.fail_link(LinkId::new(1)).unwrap();
        assert!(table.is_failed(LinkId::new(1)));
        assert_eq!(table.available(LinkId::new(1)), Bandwidth::ZERO);
        assert!(matches!(
            table.reserve_path(&path, Bandwidth::from_bps(1)),
            Err(NetError::InsufficientBandwidth { link, .. }) if link == LinkId::new(1)
        ));
        table.restore_link(LinkId::new(1)).unwrap();
        assert!(!table.is_failed(LinkId::new(1)));
        table.reserve_path(&path, Bandwidth::from_bps(1)).unwrap();
    }

    #[test]
    fn release_across_failed_link_works() {
        let (topo, path) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table.reserve_path(&path, Bandwidth::from_kbps(64)).unwrap();
        table.fail_link(LinkId::new(0)).unwrap();
        table.release_path(&path, Bandwidth::from_kbps(64)).unwrap();
        assert_eq!(
            table.snapshot(LinkId::new(0)).unwrap().reserved,
            Bandwidth::ZERO
        );
        // Still failed after the release; reset clears it.
        assert!(table.is_failed(LinkId::new(0)));
        table.reset();
        assert!(!table.is_failed(LinkId::new(0)));
    }

    #[test]
    fn failed_node_downs_incident_links_only() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table.fail_node(NodeId::new(1)).unwrap();
        assert!(table.is_node_failed(NodeId::new(1)));
        // Links 0 (0-1) and 1 (1-2) touch node 1; link 2 (2-3) does not.
        assert!(table.is_failed(LinkId::new(0)));
        assert!(table.is_failed(LinkId::new(1)));
        assert!(!table.is_failed(LinkId::new(2)));
        assert_eq!(table.available(LinkId::new(0)), Bandwidth::ZERO);
        assert_eq!(table.failed_link_count(), 2);
        assert!((table.operational_fraction() - 1.0 / 3.0).abs() < 1e-12);
        table.restore_node(NodeId::new(1)).unwrap();
        assert_eq!(table.failed_link_count(), 0);
        assert_eq!(table.operational_fraction(), 1.0);
    }

    #[test]
    fn node_restore_preserves_explicit_link_faults() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table.fail_link(LinkId::new(0)).unwrap();
        table.fail_node(NodeId::new(0)).unwrap();
        // Restoring the node must not resurrect the separately failed link.
        table.restore_node(NodeId::new(0)).unwrap();
        assert!(table.is_failed(LinkId::new(0)));
        // And restoring the link while the node is down keeps it down.
        table.fail_node(NodeId::new(0)).unwrap();
        table.restore_link(LinkId::new(0)).unwrap();
        assert!(table.is_failed(LinkId::new(0)));
        table.restore_node(NodeId::new(0)).unwrap();
        assert!(!table.is_failed(LinkId::new(0)));
    }

    #[test]
    fn fail_unknown_node_errors() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        assert!(matches!(
            table.fail_node(NodeId::new(99)),
            Err(NetError::UnknownNode(_))
        ));
        assert!(matches!(
            table.restore_node(NodeId::new(99)),
            Err(NetError::UnknownNode(_))
        ));
    }

    #[test]
    fn reset_clears_node_faults() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table.fail_node(NodeId::new(2)).unwrap();
        table.reset();
        assert!(!table.is_node_failed(NodeId::new(2)));
        assert_eq!(table.failed_link_count(), 0);
    }

    #[test]
    fn stamps_track_exactly_the_touched_links() {
        let (topo, path) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        assert_eq!(table.version(), 0);
        for i in 0..3 {
            assert_eq!(table.stamp(LinkId::new(i)), 0);
        }

        table
            .reserve(LinkId::new(1), Bandwidth::from_kbps(64))
            .unwrap();
        let v1 = table.version();
        assert!(v1 > 0);
        assert_eq!(table.stamp(LinkId::new(1)), v1);
        assert_eq!(table.stamp(LinkId::new(0)), 0);
        assert_eq!(table.stamp(LinkId::new(2)), 0);
        assert_eq!(table.max_stamp_on(&path), v1);

        // A failed reservation must not advance anything.
        assert!(table
            .reserve(LinkId::new(1), Bandwidth::from_mbps(1000))
            .is_err());
        assert_eq!(table.version(), v1);

        // Hold / release / commit all stamp their link.
        table
            .place_hold(LinkId::new(2), Bandwidth::from_mbps(1))
            .unwrap();
        assert!(table.stamp(LinkId::new(2)) > v1);
        table
            .commit_hold(LinkId::new(2), Bandwidth::from_mbps(1))
            .unwrap();
        table
            .release(LinkId::new(2), Bandwidth::from_mbps(1))
            .unwrap();
        let v2 = table.version();
        assert_eq!(table.stamp(LinkId::new(2)), v2);
        assert_eq!(table.max_stamp_on(&path), v2);

        // A trivial path depends on no links at all.
        let trivial = Path::trivial(NodeId::new(0));
        assert_eq!(table.max_stamp_on(&trivial), 0);
    }

    #[test]
    fn fault_transitions_stamp_only_effective_changes() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table.fail_node(NodeId::new(1)).unwrap();
        let after_node = table.version();
        // Links 0 and 1 flipped to failed; link 2 untouched.
        assert!(table.stamp(LinkId::new(0)) > 0);
        assert!(table.stamp(LinkId::new(1)) > 0);
        assert_eq!(table.stamp(LinkId::new(2)), 0);

        // Failing a link that is already effectively down changes nothing.
        table.fail_link(LinkId::new(0)).unwrap();
        assert_eq!(table.version(), after_node);

        // Restoring the node flips link 1 back up, but link 0 keeps its
        // explicit fault — only link 1 is stamped.
        let before_restore = (table.stamp(LinkId::new(0)), table.stamp(LinkId::new(1)));
        table.restore_node(NodeId::new(1)).unwrap();
        assert_eq!(table.stamp(LinkId::new(0)), before_restore.0);
        assert!(table.stamp(LinkId::new(1)) > before_restore.1);

        // Reset stamps every link and keeps the version monotone.
        let v = table.version();
        table.reset();
        assert!(table.version() > v);
        for i in 0..3 {
            assert_eq!(table.stamp(LinkId::new(i)), table.version());
        }
    }

    #[test]
    fn summary_aggregates_all_columns() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table
            .reserve(LinkId::new(0), Bandwidth::from_mbps(10))
            .unwrap();
        table
            .place_hold(LinkId::new(1), Bandwidth::from_mbps(5))
            .unwrap();
        table.fail_link(LinkId::new(2)).unwrap();
        let s = table.summary();
        assert_eq!(s.links, 3);
        assert_eq!(s.failed_links, 1);
        assert_eq!(s.capacity_bps, 3 * Bandwidth::from_mbps(100).bps());
        assert_eq!(s.reserved_bps, Bandwidth::from_mbps(10).bps());
        assert_eq!(s.pending_bps, Bandwidth::from_mbps(5).bps());
    }

    #[test]
    fn shard_stamps_upper_bound_link_stamps() {
        let (topo, path) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        // 3 links fit in one shard at LINKS_PER_SHARD = 64.
        assert_eq!(table.shard_count(), 1);
        assert_eq!(LinkStateTable::shard_of(LinkId::new(2)), 0);
        assert_eq!(table.shard_range(0), 0..3);
        assert_eq!(table.shard_stamp(0), 0);

        table
            .reserve(LinkId::new(1), Bandwidth::from_kbps(64))
            .unwrap();
        let v1 = table.version();
        assert_eq!(table.shard_stamp(0), v1);
        // The shard stamp upper-bounds every member stamp.
        for i in 0..3 {
            assert!(table.stamp(LinkId::new(i)) <= table.shard_stamp(0));
        }
        assert!(table.any_stamp_on_after(&path, 0));
        assert!(!table.any_stamp_on_after(&path, v1));
        // A trivial path depends on nothing.
        assert!(!table.any_stamp_on_after(&Path::trivial(NodeId::new(0)), 0));

        table.reset();
        assert_eq!(table.shard_stamp(0), table.version());
    }

    #[test]
    fn any_stamp_on_after_matches_max_stamp() {
        let (topo, path) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table
            .reserve(LinkId::new(0), Bandwidth::from_kbps(64))
            .unwrap();
        table
            .place_hold(LinkId::new(2), Bandwidth::from_kbps(64))
            .unwrap();
        for epoch in 0..=table.version() + 1 {
            assert_eq!(
                table.any_stamp_on_after(&path, epoch),
                table.max_stamp_on(&path) > epoch,
                "epoch {epoch}"
            );
        }
    }

    #[test]
    fn sharded_view_matches_flat_scan() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        table
            .reserve(LinkId::new(0), Bandwidth::from_mbps(10))
            .unwrap();
        table
            .place_hold(LinkId::new(1), Bandwidth::from_mbps(5))
            .unwrap();
        table.fail_link(LinkId::new(2)).unwrap();

        let snap = table.sharded();
        assert_eq!(snap.version(), table.version());
        assert_eq!(snap.link_count(), table.link_count());
        assert_eq!(snap.summary(), table.summary());
        assert_eq!(
            snap.saturated_links(Bandwidth::from_mbps(96)),
            table.saturated_links(Bandwidth::from_mbps(96))
        );
        // Shard iteration visits every link exactly once, in link order.
        let mut seen = Vec::new();
        for shard in 0..snap.shard_count() {
            for (link, state) in snap.iter_shard(shard) {
                assert_eq!(state, table.snapshot(link).unwrap());
                seen.push(link);
            }
        }
        let flat: Vec<LinkId> = table.iter().map(|(l, _)| l).collect();
        assert_eq!(seen, flat);
    }

    #[test]
    fn shard_boundaries_partition_wide_tables() {
        // A topology wider than one shard: a star with 70 spokes.
        let mut b = TopologyBuilder::new(71);
        let spokes: Vec<(u32, u32)> = (1..71u32).map(|i| (0, i)).collect();
        b.links_uniform(spokes, Bandwidth::from_mbps(100)).unwrap();
        let topo = b.build();
        let mut table = LinkStateTable::from_topology(&topo);
        assert_eq!(table.shard_count(), 2);
        assert_eq!(table.shard_range(0), 0..64);
        assert_eq!(table.shard_range(1), 64..70);
        assert_eq!(LinkStateTable::shard_of(LinkId::new(63)), 0);
        assert_eq!(LinkStateTable::shard_of(LinkId::new(64)), 1);

        // Touching a link in the second stripe leaves the first stripe's
        // stamp behind — that is the skip a shard-aware reader exploits.
        table
            .reserve(LinkId::new(65), Bandwidth::from_kbps(64))
            .unwrap();
        assert_eq!(table.shard_stamp(0), 0);
        assert_eq!(table.shard_stamp(1), table.version());
        let snap = table.sharded();
        assert_eq!(snap.summary(), table.summary());
        assert_eq!(
            snap.iter_shard(0).count() + snap.iter_shard(1).count(),
            table.link_count()
        );
    }

    #[test]
    fn fail_unknown_link_errors() {
        let (topo, _) = line4();
        let mut table = LinkStateTable::from_topology(&topo);
        assert!(matches!(
            table.fail_link(LinkId::new(99)),
            Err(NetError::UnknownLink(_))
        ));
        assert!(matches!(
            table.restore_link(LinkId::new(99)),
            Err(NetError::UnknownLink(_))
        ));
    }
}
