//! Anycast groups: the designated recipient sets that share an address.

use crate::{NetError, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An anycast group `G(A)`: the set of designated recipients reachable
/// through a single anycast address `A` (§3 of the paper).
///
/// Members are stored sorted and deduplicated; their position in
/// [`members`](Self::members) is the *member index* used throughout the
/// workspace for weights, history tables and route lookups.
///
/// ```rust
/// use anycast_net::{AnycastGroup, NodeId};
///
/// # fn main() -> Result<(), anycast_net::NetError> {
/// let g = AnycastGroup::new("mirrors", [NodeId::new(8), NodeId::new(0), NodeId::new(8)])?;
/// assert_eq!(g.len(), 2);
/// assert_eq!(g.members(), &[NodeId::new(0), NodeId::new(8)]);
/// assert_eq!(g.member_index(NodeId::new(8)), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnycastGroup {
    address: String,
    members: Vec<NodeId>,
}

impl AnycastGroup {
    /// Creates a group with the given anycast address label and members.
    ///
    /// Duplicate members are removed; members are kept in ascending id order.
    ///
    /// # Errors
    ///
    /// [`NetError::EmptyGroup`] if `members` is empty after deduplication.
    pub fn new<I>(address: impl Into<String>, members: I) -> Result<Self, NetError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut members: Vec<NodeId> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        if members.is_empty() {
            return Err(NetError::EmptyGroup);
        }
        Ok(AnycastGroup {
            address: address.into(),
            members,
        })
    }

    /// The anycast address label.
    pub fn address(&self) -> &str {
        &self.address
    }

    /// The members in ascending node-id order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The group size `K`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `false` by construction (groups are never empty), provided for
    /// clippy-idiomatic pairing with [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member at a given index.
    pub fn member(&self, index: usize) -> Option<NodeId> {
        self.members.get(index).copied()
    }

    /// The index of a node within the group, if it is a member.
    pub fn member_index(&self, node: NodeId) -> Option<usize> {
        self.members.binary_search(&node).ok()
    }

    /// Returns `true` if `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.member_index(node).is_some()
    }
}

impl fmt::Display for AnycastGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.address)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_group() {
        let g = AnycastGroup::new("A", [0u32, 4, 8, 12, 16].map(NodeId::new)).unwrap();
        assert_eq!(g.len(), 5);
        assert!(!g.is_empty());
        assert_eq!(g.address(), "A");
        assert!(g.contains(NodeId::new(12)));
        assert!(!g.contains(NodeId::new(1)));
        assert_eq!(g.member(4), Some(NodeId::new(16)));
        assert_eq!(g.member(5), None);
    }

    #[test]
    fn members_sorted_and_deduped() {
        let g = AnycastGroup::new("A", [5u32, 1, 5, 3].map(NodeId::new)).unwrap();
        assert_eq!(
            g.members(),
            &[NodeId::new(1), NodeId::new(3), NodeId::new(5)]
        );
        assert_eq!(g.member_index(NodeId::new(3)), Some(1));
    }

    #[test]
    fn empty_group_rejected() {
        assert_eq!(
            AnycastGroup::new("A", std::iter::empty()).unwrap_err(),
            NetError::EmptyGroup
        );
    }

    #[test]
    fn unicast_is_singleton_group() {
        // "Traditional unicast flow is a special case of anycast flow" (§1).
        let g = AnycastGroup::new("u", [NodeId::new(7)]).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.member_index(NodeId::new(7)), Some(0));
    }

    #[test]
    fn display_shows_address_and_members() {
        let g = AnycastGroup::new("srv", [NodeId::new(2), NodeId::new(0)]).unwrap();
        assert_eq!(g.to_string(), "srv{n0,n2}");
    }
}
