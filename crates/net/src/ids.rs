//! Strongly-typed identifiers for nodes and links.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (router or host) in a [`Topology`](crate::Topology).
///
/// Node ids are dense indices `0..topology.node_count()`; the experiments of
/// the paper refer to routers by these numbers (e.g. the anycast group lives
/// at routers 0, 4, 8, 12 and 16 of the MCI backbone).
///
/// ```rust
/// use anycast_net::NodeId;
/// let n = NodeId::new(4);
/// assert_eq!(n.index(), 4);
/// assert_eq!(n.to_string(), "n4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifier of an undirected link in a [`Topology`](crate::Topology).
///
/// Link ids are dense indices `0..topology.link_count()` assigned in the
/// order links were added to the topology builder.
///
/// ```rust
/// use anycast_net::LinkId;
/// let l = LinkId::new(3);
/// assert_eq!(l.index(), 3);
/// assert_eq!(l.to_string(), "l3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a link id from its dense index.
    pub const fn new(index: u32) -> Self {
        LinkId(index)
    }

    /// Returns the dense index of this link.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u32> for LinkId {
    fn from(v: u32) -> Self {
        LinkId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.raw(), 7);
        assert_eq!(NodeId::from(7u32), n);
    }

    #[test]
    fn link_id_roundtrip() {
        let l = LinkId::new(11);
        assert_eq!(l.index(), 11);
        assert_eq!(l.raw(), 11);
        assert_eq!(LinkId::from(11u32), l);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(LinkId::new(0) < LinkId::new(5));
    }

    #[test]
    fn display_is_nonempty_and_tagged() {
        assert_eq!(NodeId::new(0).to_string(), "n0");
        assert_eq!(LinkId::new(0).to_string(), "l0");
    }
}
