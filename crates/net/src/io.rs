//! Plain-text topology exchange: a minimal edge-list format.
//!
//! One line per link: `<node-a> <node-b> <capacity-bps>`, with `#`
//! comments and blank lines ignored. The node count is inferred as
//! `max id + 1`. This is enough to bring external topologies (Rocketfuel
//! dumps, hand-drawn testbeds) into the experiment harness without a
//! serialization dependency.
//!
//! ```rust
//! use anycast_net::io::{parse_edge_list, to_edge_list};
//!
//! # fn main() -> Result<(), anycast_net::NetError> {
//! let text = "# tiny triangle\n0 1 100000000\n1 2 100000000\n0 2 100000000\n";
//! let topo = parse_edge_list(text)?;
//! assert_eq!(topo.node_count(), 3);
//! assert_eq!(topo.link_count(), 3);
//! let round_trip = parse_edge_list(&to_edge_list(&topo))?;
//! assert_eq!(round_trip.link_count(), topo.link_count());
//! # Ok(())
//! # }
//! ```

use crate::{Bandwidth, NetError, NodeId, Topology, TopologyBuilder};
use std::fmt::Write as _;

/// Parses an edge-list document into a topology.
///
/// # Errors
///
/// [`NetError::MalformedEdgeList`] with the offending line number for
/// syntax problems, and the usual construction errors
/// ([`NetError::SelfLoop`], [`NetError::DuplicateLink`]) for semantic
/// ones.
pub fn parse_edge_list(text: &str) -> Result<Topology, NetError> {
    let mut edges: Vec<(u32, u32, u64)> = Vec::new();
    let mut max_node = 0u32;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let mut field = |name: &'static str| -> Result<&str, NetError> {
            parts.next().ok_or(NetError::MalformedEdgeList {
                line: idx + 1,
                reason: name,
            })
        };
        let a: u32 =
            field("missing first endpoint")?
                .parse()
                .map_err(|_| NetError::MalformedEdgeList {
                    line: idx + 1,
                    reason: "first endpoint is not an integer",
                })?;
        let b: u32 =
            field("missing second endpoint")?
                .parse()
                .map_err(|_| NetError::MalformedEdgeList {
                    line: idx + 1,
                    reason: "second endpoint is not an integer",
                })?;
        let cap: u64 =
            field("missing capacity")?
                .parse()
                .map_err(|_| NetError::MalformedEdgeList {
                    line: idx + 1,
                    reason: "capacity is not an integer (bits per second)",
                })?;
        if parts.next().is_some() {
            return Err(NetError::MalformedEdgeList {
                line: idx + 1,
                reason: "trailing fields after capacity",
            });
        }
        max_node = max_node.max(a).max(b);
        edges.push((a, b, cap));
    }
    if edges.is_empty() {
        return Err(NetError::MalformedEdgeList {
            line: 0,
            reason: "document contains no links",
        });
    }
    let mut builder = TopologyBuilder::new(max_node as usize + 1);
    for (a, b, cap) in edges {
        builder.link(NodeId::new(a), NodeId::new(b), Bandwidth::from_bps(cap))?;
    }
    Ok(builder.build())
}

/// Renders a topology as an edge-list document (one link per line,
/// lower endpoint first, in link-id order).
pub fn to_edge_list(topo: &Topology) -> String {
    let mut out = String::with_capacity(topo.link_count() * 24);
    let _ = writeln!(
        out,
        "# {} nodes, {} links",
        topo.node_count(),
        topo.link_count()
    );
    for link in topo.links() {
        let _ = writeln!(
            out,
            "{} {} {}",
            link.a().raw(),
            link.b().raw(),
            link.capacity().bps()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn round_trips_the_mci_backbone() {
        let original = topologies::mci();
        let text = to_edge_list(&original);
        let parsed = parse_edge_list(&text).unwrap();
        assert_eq!(parsed.node_count(), original.node_count());
        assert_eq!(parsed.link_count(), original.link_count());
        for (a, b) in original.links().zip(parsed.links()) {
            assert_eq!((a.a(), a.b(), a.capacity()), (b.a(), b.b(), b.capacity()));
        }
    }

    #[test]
    fn ignores_comments_and_blanks() {
        let text = "\n# header\n  \n0 1 1000\n\n# tail\n1 2 2000\n";
        let topo = parse_edge_list(text).unwrap();
        assert_eq!(topo.node_count(), 3);
        assert_eq!(topo.link_count(), 2);
        assert_eq!(
            topo.link(crate::LinkId::new(1)).unwrap().capacity(),
            Bandwidth::from_bps(2000)
        );
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_edge_list("0 1 100\nbogus line\n").unwrap_err();
        assert!(matches!(err, NetError::MalformedEdgeList { line: 2, .. }));
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn rejects_bad_fields() {
        for (text, reason_part) in [
            ("0", "second endpoint"),
            ("0 1", "capacity"),
            ("x 1 5", "not an integer"),
            ("0 y 5", "not an integer"),
            ("0 1 z", "capacity is not an integer"),
            ("0 1 5 6", "trailing"),
            ("", "no links"),
            ("# only comments\n", "no links"),
        ] {
            let err = parse_edge_list(text).unwrap_err();
            assert!(err.to_string().contains(reason_part), "{text:?} → {err}");
        }
    }

    #[test]
    fn semantic_errors_propagate() {
        assert!(matches!(
            parse_edge_list("3 3 100\n"),
            Err(NetError::SelfLoop(_))
        ));
        assert!(matches!(
            parse_edge_list("0 1 100\n1 0 100\n"),
            Err(NetError::DuplicateLink(_, _))
        ));
    }

    #[test]
    fn isolated_low_ids_are_allowed() {
        // Node ids need not be contiguous in the input; gaps become
        // isolated nodes.
        let topo = parse_edge_list("0 5 100\n").unwrap();
        assert_eq!(topo.node_count(), 6);
        assert!(!topo.is_connected());
    }
}
