//! Property-based tests for the network substrate invariants.

use anycast_net::routing::{
    bfs_tree, dijkstra_path, filtered_shortest_path, k_shortest_paths, widest_path,
};
use anycast_net::{topologies, Bandwidth, LinkId, LinkStateTable, NodeId, Path, Topology};
use proptest::prelude::*;

/// Strategy: a connected random topology (Waxman) with 5–30 nodes.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (5usize..30, any::<u64>()).prop_map(|(n, seed)| {
        topologies::waxman(n, 0.6, 0.6, seed, Bandwidth::from_mbps(100))
            .expect("waxman retry finds a connected graph at these densities")
    })
}

proptest! {
    /// BFS tree paths have length equal to the reported distance, and the
    /// distance function satisfies the triangle property along links.
    #[test]
    fn bfs_paths_match_distances(topo in arb_topology(), root_seed in any::<u32>()) {
        let root = NodeId::new(root_seed % topo.node_count() as u32);
        let tree = bfs_tree(&topo, root);
        for d in topo.nodes() {
            let dist = tree.distance(d).expect("waxman graphs are connected");
            let path = tree.path_to(&topo, d).unwrap();
            prop_assert_eq!(path.hops() as u32, dist);
            prop_assert_eq!(path.source(), root);
            prop_assert_eq!(path.destination(), d);
        }
        // Neighbouring nodes differ in distance by at most one hop.
        for n in topo.nodes() {
            let dn = tree.distance(n).unwrap();
            for &(m, _) in topo.neighbors(n) {
                let dm = tree.distance(m).unwrap();
                prop_assert!(dn.abs_diff(dm) <= 1);
            }
        }
    }

    /// Dijkstra with unit costs agrees with BFS hop distances.
    #[test]
    fn dijkstra_unit_matches_bfs(topo in arb_topology(), seeds in any::<(u32, u32)>()) {
        let s = NodeId::new(seeds.0 % topo.node_count() as u32);
        let d = NodeId::new(seeds.1 % topo.node_count() as u32);
        let bfs = bfs_tree(&topo, s);
        let dij = dijkstra_path(&topo, s, d, |_| 1.0).unwrap();
        prop_assert_eq!(dij.hops() as u32, bfs.distance(d).unwrap());
    }

    /// Reserving then releasing any multiset of (link, bandwidth) pairs
    /// restores the ledger exactly.
    #[test]
    fn ledger_reserve_release_is_identity(
        topo in arb_topology(),
        ops in prop::collection::vec((any::<u32>(), 1u64..1_000_000), 0..40),
    ) {
        let mut table = LinkStateTable::from_topology(&topo);
        let initial: Vec<_> = table.iter().collect();
        let mut applied = Vec::new();
        for (raw_link, bw) in ops {
            let link = LinkId::new(raw_link % topo.link_count() as u32);
            let bw = Bandwidth::from_bps(bw);
            if table.reserve(link, bw).is_ok() {
                applied.push((link, bw));
            }
        }
        // Available bandwidth never exceeds capacity, never negative
        // (guaranteed by types, but check reserved <= capacity explicitly).
        for (id, snap) in table.iter() {
            prop_assert!(snap.reserved <= snap.capacity, "link {} over-reserved", id);
        }
        for (link, bw) in applied.into_iter().rev() {
            table.release(link, bw).unwrap();
        }
        let fin: Vec<_> = table.iter().collect();
        prop_assert_eq!(initial, fin);
    }

    /// Path-level reservation is all-or-nothing: after a failed
    /// reserve_path the ledger is unchanged.
    #[test]
    fn failed_path_reservation_leaves_no_trace(
        topo in arb_topology(),
        pair in any::<(u32, u32)>(),
        preload in any::<u32>(),
    ) {
        let s = NodeId::new(pair.0 % topo.node_count() as u32);
        let d = NodeId::new(pair.1 % topo.node_count() as u32);
        let tree = bfs_tree(&topo, s);
        let path = tree.path_to(&topo, d).unwrap();
        prop_assume!(path.hops() >= 1);
        let mut table = LinkStateTable::from_topology(&topo);
        // Saturate one link on the path.
        let victim = path.links()[preload as usize % path.links().len()];
        let avail = table.available(victim);
        table.reserve(victim, avail).unwrap();
        let before: Vec<_> = table.iter().collect();
        let res = table.reserve_path(&path, Bandwidth::from_bps(1));
        prop_assert!(res.is_err());
        let after: Vec<_> = table.iter().collect();
        prop_assert_eq!(before, after);
    }

    /// The filtered search never returns a path containing an infeasible
    /// link, and agrees with plain BFS when the network is idle.
    #[test]
    fn filtered_search_respects_filter(
        topo in arb_topology(),
        pair in any::<(u32, u32)>(),
        saturate in prop::collection::vec(any::<u32>(), 0..10),
    ) {
        let s = NodeId::new(pair.0 % topo.node_count() as u32);
        let d = NodeId::new(pair.1 % topo.node_count() as u32);
        let mut table = LinkStateTable::from_topology(&topo);
        for raw in saturate {
            let l = LinkId::new(raw % topo.link_count() as u32);
            let avail = table.available(l);
            if !avail.is_zero() {
                table.reserve(l, avail).unwrap();
            }
        }
        let demand = Bandwidth::from_kbps(64);
        if let Some(p) = filtered_shortest_path(&topo, &table, s, d, demand) {
            for l in p.links() {
                prop_assert!(table.available(*l) >= demand);
            }
            prop_assert_eq!(p.source(), s);
            prop_assert_eq!(p.destination(), d);
        }
        let idle = LinkStateTable::from_topology(&topo);
        let free = filtered_shortest_path(&topo, &idle, s, d, demand).unwrap();
        let bfs = bfs_tree(&topo, s).path_to(&topo, d).unwrap();
        prop_assert_eq!(free.hops(), bfs.hops());
    }

    /// The widest path's claimed width equals the measured bottleneck and
    /// is at least the width of the BFS shortest path.
    #[test]
    fn widest_path_width_is_bottleneck(
        topo in arb_topology(),
        pair in any::<(u32, u32)>(),
        loads in prop::collection::vec(0u64..100_000_000, 0..20),
    ) {
        let s = NodeId::new(pair.0 % topo.node_count() as u32);
        let d = NodeId::new(pair.1 % topo.node_count() as u32);
        prop_assume!(s != d);
        let mut table = LinkStateTable::from_topology(&topo);
        for (i, load) in loads.iter().enumerate() {
            let l = LinkId::new((i % topo.link_count()) as u32);
            let bw = Bandwidth::from_bps(*load).min(table.available(l));
            if !bw.is_zero() {
                table.reserve(l, bw).unwrap();
            }
        }
        if let Some((path, width)) = widest_path(&topo, &table, s, d) {
            prop_assert_eq!(table.min_available_on(&path), width);
            let bfs = bfs_tree(&topo, s).path_to(&topo, d).unwrap();
            prop_assert!(width >= table.min_available_on(&bfs));
        }
    }

    /// Yen's k shortest paths are distinct, loop-free, sorted by length,
    /// and start from the plain BFS shortest path.
    #[test]
    fn yen_paths_well_formed(
        topo in arb_topology(),
        pair in any::<(u32, u32)>(),
        k in 1usize..6,
    ) {
        let s = NodeId::new(pair.0 % topo.node_count() as u32);
        let d = NodeId::new(pair.1 % topo.node_count() as u32);
        prop_assume!(s != d);
        let paths = k_shortest_paths(&topo, s, d, k);
        prop_assert!(!paths.is_empty(), "waxman graphs are connected");
        prop_assert!(paths.len() <= k);
        let bfs = bfs_tree(&topo, s).path_to(&topo, d).unwrap();
        prop_assert_eq!(paths[0].hops(), bfs.hops());
        for (i, p) in paths.iter().enumerate() {
            prop_assert_eq!(p.source(), s);
            prop_assert_eq!(p.destination(), d);
            // Loop-free: Path::new enforces node uniqueness.
            prop_assert!(Path::new(&topo, p.nodes().to_vec(), p.links().to_vec()).is_ok());
            for q in &paths[..i] {
                prop_assert_ne!(p, q, "paths must be distinct");
            }
        }
        for w in paths.windows(2) {
            prop_assert!(w[0].hops() <= w[1].hops(), "nondecreasing lengths");
        }
    }

    /// Any BFS path validates under Path::new against its topology.
    #[test]
    fn bfs_paths_validate(topo in arb_topology(), pair in any::<(u32, u32)>()) {
        let s = NodeId::new(pair.0 % topo.node_count() as u32);
        let d = NodeId::new(pair.1 % topo.node_count() as u32);
        let p = bfs_tree(&topo, s).path_to(&topo, d).unwrap();
        let rebuilt = Path::new(&topo, p.nodes().to_vec(), p.links().to_vec());
        prop_assert!(rebuilt.is_ok());
    }
}
