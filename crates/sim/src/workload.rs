//! The stochastic workload of §5.1: Poisson flow-request arrivals with
//! exponentially distributed lifetimes — plus the datacenter-facing
//! extensions (heavy-tailed Pareto lifetimes via [`HoldingSampler`],
//! diurnal rate curves and flash-crowd windows via [`ModulatedWorkload`]).

use crate::{Duration, SimRng, SimTime};

/// How flow lifetimes are drawn.
///
/// The default [`HoldingSampler::Exponential`] consumes exactly the same
/// RNG draws as the historical `exp_duration` call, so existing seeded
/// scenarios stay byte-identical. [`HoldingSampler::Pareto`] models the
/// heavy-tailed ("elephant and mice") lifetimes of datacenter traffic: a
/// Pareto-I variable with the given tail `shape > 1`, scaled so the mean
/// matches `mean_secs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HoldingSampler {
    /// `Exp(mean_secs)` — the paper's §5.1 model.
    Exponential {
        /// Mean lifetime in seconds.
        mean_secs: f64,
    },
    /// Pareto-I with tail index `shape` and mean `mean_secs`
    /// (`x_min = mean · (shape − 1) / shape`); finite variance needs
    /// `shape > 2`, finite mean needs `shape > 1` (enforced).
    Pareto {
        /// Mean lifetime in seconds.
        mean_secs: f64,
        /// Tail index; smaller is heavier-tailed. Must exceed 1.
        shape: f64,
    },
}

impl HoldingSampler {
    /// An exponential sampler with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean_secs` is not positive and finite.
    pub fn exponential(mean_secs: f64) -> Self {
        assert!(
            mean_secs.is_finite() && mean_secs > 0.0,
            "mean holding time must be positive and finite, got {mean_secs}"
        );
        HoldingSampler::Exponential { mean_secs }
    }

    /// A Pareto sampler with the given mean and tail index.
    ///
    /// # Panics
    ///
    /// Panics if `mean_secs` is not positive and finite or `shape <= 1`
    /// (the mean would be infinite).
    pub fn pareto(mean_secs: f64, shape: f64) -> Self {
        assert!(
            mean_secs.is_finite() && mean_secs > 0.0,
            "mean holding time must be positive and finite, got {mean_secs}"
        );
        assert!(
            shape.is_finite() && shape > 1.0,
            "pareto shape must exceed 1 for a finite mean, got {shape}"
        );
        HoldingSampler::Pareto { mean_secs, shape }
    }

    /// The configured mean lifetime in seconds.
    pub fn mean_secs(&self) -> f64 {
        match *self {
            HoldingSampler::Exponential { mean_secs }
            | HoldingSampler::Pareto { mean_secs, .. } => mean_secs,
        }
    }

    /// Draws one lifetime from `rng`.
    pub fn draw(&self, rng: &mut SimRng) -> Duration {
        match *self {
            HoldingSampler::Exponential { mean_secs } => rng.exp_duration(mean_secs),
            HoldingSampler::Pareto { mean_secs, shape } => {
                let x_min = mean_secs * (shape - 1.0) / shape;
                // Inversion: X = x_min · U^(−1/shape); use 1 − U ∈ (0, 1]
                // so the tail draw never divides by zero.
                let u = 1.0 - rng.uniform();
                Duration::from_secs(x_min * u.powf(-1.0 / shape))
            }
        }
    }
}

/// One anycast flow-establishment request drawn from the workload.
///
/// The source is an index into the experiment's source list (the hosts at
/// odd-numbered routers in the paper); the holding time is how long the
/// flow occupies its reservation if admitted. The crate is deliberately
/// independent of the network layer, so sources are plain indices here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRequest {
    /// Index into the experiment's list of source nodes.
    pub source_index: usize,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Lifetime of the flow once admitted.
    pub holding: Duration,
}

/// Generates the paper's traffic model: requests form a Poisson process
/// with rate `lambda` (flows per second across the whole network); each
/// request picks a source uniformly at random; lifetimes are exponential
/// with the configured mean (180 s in §5.1).
#[derive(Debug, Clone)]
pub struct PoissonWorkload {
    lambda: f64,
    holding: HoldingSampler,
    source_count: usize,
    next_arrival: SimTime,
    arrivals_rng: SimRng,
    holding_rng: SimRng,
    source_rng: SimRng,
}

impl PoissonWorkload {
    /// Creates a workload generator.
    ///
    /// * `lambda` — total request rate in flows/second;
    /// * `mean_holding_secs` — mean exponential lifetime;
    /// * `source_count` — number of candidate sources (uniformly likely);
    /// * `rng` — the seed stream; three independent sub-streams are forked
    ///   so arrival times are invariant to how lifetimes are consumed.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` or `mean_holding_secs` are not positive/finite,
    /// or `source_count` is zero.
    pub fn new(lambda: f64, mean_holding_secs: f64, source_count: usize, rng: &mut SimRng) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "arrival rate must be positive and finite, got {lambda}"
        );
        let holding = HoldingSampler::exponential(mean_holding_secs);
        assert!(source_count > 0, "need at least one source");
        let mut arrivals_rng = rng.fork();
        let holding_rng = rng.fork();
        let source_rng = rng.fork();
        let first = SimTime::ZERO + Duration::from_secs(arrivals_rng.exp(1.0 / lambda));
        PoissonWorkload {
            lambda,
            holding,
            source_count,
            next_arrival: first,
            arrivals_rng,
            holding_rng,
            source_rng,
        }
    }

    /// Replaces the lifetime model (e.g. with a heavy-tailed
    /// [`HoldingSampler::Pareto`]); arrival and source draws are
    /// unaffected because lifetimes consume an independent sub-stream.
    pub fn with_holding(mut self, holding: HoldingSampler) -> Self {
        self.holding = holding;
        self
    }

    /// The configured total arrival rate.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The offered traffic intensity per source in erlangs:
    /// `(λ / sources) · mean_holding`.
    pub fn per_source_erlangs(&self) -> f64 {
        self.lambda * self.holding.mean_secs() / self.source_count as f64
    }

    /// Arrival time of the next request without consuming it.
    pub fn peek_next_arrival(&self) -> SimTime {
        self.next_arrival
    }

    /// Draws the next request and advances the arrival process.
    pub fn next_request(&mut self) -> FlowRequest {
        let arrival = self.next_arrival;
        let gap = self.arrivals_rng.exp(1.0 / self.lambda);
        self.next_arrival = arrival + Duration::from_secs(gap);
        FlowRequest {
            source_index: self.source_rng.below(self.source_count),
            arrival,
            holding: self.holding.draw(&mut self.holding_rng),
        }
    }
}

/// A two-state Markov-modulated Poisson process (MMPP-2): the arrival
/// rate alternates between a *calm* and a *burst* state with exponential
/// sojourn times — the standard bursty-traffic generalisation of the
/// paper's plain Poisson assumption.
///
/// The long-run mean rate is the sojourn-weighted average of the two
/// state rates, so an MMPP can be constructed to match a Poisson
/// workload's mean while concentrating arrivals in bursts
/// ([`BurstyWorkload::with_mean_rate`]).
#[derive(Debug, Clone)]
pub struct BurstyWorkload {
    calm_rate: f64,
    burst_rate: f64,
    mean_calm_secs: f64,
    mean_burst_secs: f64,
    holding: HoldingSampler,
    source_count: usize,
    in_burst: bool,
    state_ends: SimTime,
    clock: SimTime,
    arrivals_rng: SimRng,
    state_rng: SimRng,
    holding_rng: SimRng,
    source_rng: SimRng,
}

impl BurstyWorkload {
    /// Creates an MMPP-2 workload with explicit state rates and mean
    /// sojourn times.
    ///
    /// # Panics
    ///
    /// Panics if any rate or sojourn/holding time is non-positive or
    /// non-finite, or `source_count` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        calm_rate: f64,
        burst_rate: f64,
        mean_calm_secs: f64,
        mean_burst_secs: f64,
        mean_holding_secs: f64,
        source_count: usize,
        rng: &mut SimRng,
    ) -> Self {
        for (name, v) in [
            ("calm rate", calm_rate),
            ("burst rate", burst_rate),
            ("mean calm sojourn", mean_calm_secs),
            ("mean burst sojourn", mean_burst_secs),
        ] {
            assert!(
                v.is_finite() && v > 0.0,
                "{name} must be positive and finite, got {v}"
            );
        }
        let holding = HoldingSampler::exponential(mean_holding_secs);
        assert!(source_count > 0, "need at least one source");
        let arrivals_rng = rng.fork();
        let mut state_rng = rng.fork();
        let holding_rng = rng.fork();
        let source_rng = rng.fork();
        let first_sojourn = state_rng.exp(mean_calm_secs);
        BurstyWorkload {
            calm_rate,
            burst_rate,
            mean_calm_secs,
            mean_burst_secs,
            holding,
            source_count,
            in_burst: false,
            state_ends: SimTime::from_secs(first_sojourn),
            clock: SimTime::ZERO,
            arrivals_rng,
            state_rng,
            holding_rng,
            source_rng,
        }
    }

    /// Creates an MMPP-2 whose long-run mean rate equals `mean_rate`,
    /// with the burst state `burstiness ≥ 1` times hotter than the mean
    /// and equal mean sojourns in both states.
    ///
    /// `burstiness = 1` degenerates to (approximately) plain Poisson.
    ///
    /// # Panics
    ///
    /// Panics on non-positive/non-finite arguments, `burstiness < 1`, or
    /// `burstiness ≥ 2` (the calm rate would be non-positive with equal
    /// sojourns), or a zero `source_count`.
    pub fn with_mean_rate(
        mean_rate: f64,
        burstiness: f64,
        mean_sojourn_secs: f64,
        mean_holding_secs: f64,
        source_count: usize,
        rng: &mut SimRng,
    ) -> Self {
        assert!(
            (1.0..2.0).contains(&burstiness),
            "burstiness must lie in [1, 2) for equal sojourns, got {burstiness}"
        );
        let burst_rate = mean_rate * burstiness;
        let calm_rate = mean_rate * (2.0 - burstiness);
        Self::new(
            calm_rate.max(mean_rate * 1e-6),
            burst_rate,
            mean_sojourn_secs,
            mean_sojourn_secs,
            mean_holding_secs,
            source_count,
            rng,
        )
    }

    /// Replaces the lifetime model (see
    /// [`PoissonWorkload::with_holding`]).
    pub fn with_holding(mut self, holding: HoldingSampler) -> Self {
        self.holding = holding;
        self
    }

    /// The long-run mean arrival rate.
    pub fn mean_rate(&self) -> f64 {
        (self.calm_rate * self.mean_calm_secs + self.burst_rate * self.mean_burst_secs)
            / (self.mean_calm_secs + self.mean_burst_secs)
    }

    /// Whether the modulating chain is currently in the burst state.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    fn current_rate(&self) -> f64 {
        if self.in_burst {
            self.burst_rate
        } else {
            self.calm_rate
        }
    }

    /// Draws the next request and advances both the arrival process and
    /// the modulating chain.
    pub fn next_request(&mut self) -> FlowRequest {
        // Advance through state boundaries until an arrival lands inside
        // the current sojourn (memorylessness lets us redraw the
        // exponential gap at each boundary).
        loop {
            let gap = self.arrivals_rng.exp(1.0 / self.current_rate());
            let candidate = self.clock + Duration::from_secs(gap);
            if candidate <= self.state_ends {
                self.clock = candidate;
                return FlowRequest {
                    source_index: self.source_rng.below(self.source_count),
                    arrival: candidate,
                    holding: self.holding.draw(&mut self.holding_rng),
                };
            }
            // Cross into the next state.
            self.clock = self.state_ends;
            self.in_burst = !self.in_burst;
            let sojourn = if self.in_burst {
                self.state_rng.exp(self.mean_burst_secs)
            } else {
                self.state_rng.exp(self.mean_calm_secs)
            };
            self.state_ends = self.clock + Duration::from_secs(sojourn);
        }
    }
}

/// A deterministic time-varying multiplier on a base arrival rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateEnvelope {
    /// Sinusoidal diurnal curve: the instantaneous rate is
    /// `mean · (1 + amplitude · sin(2π · t / period_secs))`, averaging to
    /// the mean over each period.
    Diurnal {
        /// Relative swing in `[0, 1)`; `0.5` means ±50 % around the mean.
        amplitude: f64,
        /// Cycle length in seconds (86 400 for a literal day).
        period_secs: f64,
    },
    /// Flash crowd: the rate is `mean · multiplier` inside
    /// `[start_secs, start_secs + duration_secs)` and `mean` outside.
    Window {
        /// Window start in seconds.
        start_secs: f64,
        /// Window length in seconds.
        duration_secs: f64,
        /// Rate multiplier `≥ 1` inside the window.
        multiplier: f64,
    },
}

impl RateEnvelope {
    fn validate(&self) {
        match *self {
            RateEnvelope::Diurnal {
                amplitude,
                period_secs,
            } => {
                assert!(
                    (0.0..1.0).contains(&amplitude),
                    "diurnal amplitude must lie in [0, 1), got {amplitude}"
                );
                assert!(
                    period_secs.is_finite() && period_secs > 0.0,
                    "diurnal period must be positive and finite, got {period_secs}"
                );
            }
            RateEnvelope::Window {
                start_secs,
                duration_secs,
                multiplier,
            } => {
                assert!(
                    start_secs.is_finite() && start_secs >= 0.0,
                    "window start must be non-negative and finite, got {start_secs}"
                );
                assert!(
                    duration_secs.is_finite() && duration_secs > 0.0,
                    "window duration must be positive and finite, got {duration_secs}"
                );
                assert!(
                    multiplier.is_finite() && multiplier >= 1.0,
                    "window multiplier must be >= 1 and finite, got {multiplier}"
                );
            }
        }
    }

    /// The multiplier applied to the base rate at time `t_secs`.
    pub fn factor_at(&self, t_secs: f64) -> f64 {
        match *self {
            RateEnvelope::Diurnal {
                amplitude,
                period_secs,
            } => 1.0 + amplitude * (std::f64::consts::TAU * t_secs / period_secs).sin(),
            RateEnvelope::Window {
                start_secs,
                duration_secs,
                multiplier,
            } => {
                if t_secs >= start_secs && t_secs < start_secs + duration_secs {
                    multiplier
                } else {
                    1.0
                }
            }
        }
    }

    /// The largest multiplier the envelope ever produces (the thinning
    /// bound).
    pub fn peak_factor(&self) -> f64 {
        match *self {
            RateEnvelope::Diurnal { amplitude, .. } => 1.0 + amplitude,
            RateEnvelope::Window { multiplier, .. } => multiplier,
        }
    }

    /// Whether `t_secs` falls inside a [`RateEnvelope::Window`]; always
    /// `false` for diurnal envelopes.
    pub fn in_window(&self, t_secs: f64) -> bool {
        match *self {
            RateEnvelope::Diurnal { .. } => false,
            RateEnvelope::Window {
                start_secs,
                duration_secs,
                ..
            } => t_secs >= start_secs && t_secs < start_secs + duration_secs,
        }
    }
}

/// A non-homogeneous Poisson workload whose rate follows a deterministic
/// [`RateEnvelope`] — diurnal load curves and flash-crowd bursts.
///
/// Arrivals are generated by thinning a homogeneous Poisson process at
/// the envelope's peak rate: candidates are drawn at
/// `mean_rate · peak_factor` and accepted with probability
/// `rate(t) / peak`. The candidate stream and the accept/reject stream
/// are independent forks, so the same seed yields the same accepted
/// arrivals regardless of the lifetime model.
#[derive(Debug, Clone)]
pub struct ModulatedWorkload {
    mean_rate: f64,
    peak_rate: f64,
    envelope: RateEnvelope,
    holding: HoldingSampler,
    source_count: usize,
    clock: SimTime,
    arrivals_rng: SimRng,
    thin_rng: SimRng,
    holding_rng: SimRng,
    source_rng: SimRng,
}

impl ModulatedWorkload {
    /// Creates a modulated workload with base rate `mean_rate` and
    /// exponential lifetimes of mean `mean_holding_secs` (swap with
    /// [`ModulatedWorkload::with_holding`]).
    ///
    /// # Panics
    ///
    /// Panics if `mean_rate` or `mean_holding_secs` is not positive and
    /// finite, the envelope parameters are out of range, or
    /// `source_count` is zero.
    pub fn new(
        mean_rate: f64,
        envelope: RateEnvelope,
        mean_holding_secs: f64,
        source_count: usize,
        rng: &mut SimRng,
    ) -> Self {
        assert!(
            mean_rate.is_finite() && mean_rate > 0.0,
            "arrival rate must be positive and finite, got {mean_rate}"
        );
        envelope.validate();
        let holding = HoldingSampler::exponential(mean_holding_secs);
        assert!(source_count > 0, "need at least one source");
        let arrivals_rng = rng.fork();
        let thin_rng = rng.fork();
        let holding_rng = rng.fork();
        let source_rng = rng.fork();
        ModulatedWorkload {
            mean_rate,
            peak_rate: mean_rate * envelope.peak_factor(),
            envelope,
            holding,
            source_count,
            clock: SimTime::ZERO,
            arrivals_rng,
            thin_rng,
            holding_rng,
            source_rng,
        }
    }

    /// Replaces the lifetime model (see
    /// [`PoissonWorkload::with_holding`]).
    pub fn with_holding(mut self, holding: HoldingSampler) -> Self {
        self.holding = holding;
        self
    }

    /// The base (off-peak mean) arrival rate.
    pub fn mean_rate(&self) -> f64 {
        self.mean_rate
    }

    /// The envelope modulating this workload.
    pub fn envelope(&self) -> &RateEnvelope {
        &self.envelope
    }

    /// Draws the next request by thinning the peak-rate candidate stream.
    pub fn next_request(&mut self) -> FlowRequest {
        loop {
            let gap = self.arrivals_rng.exp(1.0 / self.peak_rate);
            self.clock += Duration::from_secs(gap);
            let rate = self.mean_rate * self.envelope.factor_at(self.clock.as_secs());
            if self.thin_rng.uniform() * self.peak_rate < rate {
                return FlowRequest {
                    source_index: self.source_rng.below(self.source_count),
                    arrival: self.clock,
                    holding: self.holding.draw(&mut self.holding_rng),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(lambda: f64, seed: u64) -> PoissonWorkload {
        let mut rng = SimRng::seed_from(seed);
        PoissonWorkload::new(lambda, 180.0, 9, &mut rng)
    }

    #[test]
    fn arrival_rate_matches_lambda() {
        let mut w = workload(20.0, 1);
        let n = 100_000;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            let req = w.next_request();
            assert!(req.arrival >= last, "arrivals must be nondecreasing");
            last = req.arrival;
        }
        let measured_rate = n as f64 / last.as_secs();
        assert!(
            (measured_rate - 20.0).abs() < 0.5,
            "measured rate {measured_rate}"
        );
    }

    #[test]
    fn holding_mean_matches() {
        let mut w = workload(5.0, 2);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| w.next_request().holding.as_secs()).sum();
        let mean = total / n as f64;
        assert!((mean - 180.0).abs() < 4.0, "mean holding {mean}");
    }

    #[test]
    fn sources_uniform() {
        let mut w = workload(5.0, 3);
        let mut counts = [0usize; 9];
        let n = 90_000;
        for _ in 0..n {
            counts[w.next_request().source_index] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = c as f64 / n as f64;
            assert!((p - 1.0 / 9.0).abs() < 0.01, "source {i} probability {p}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = workload(10.0, 9);
        let mut b = workload(10.0, 9);
        for _ in 0..100 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    fn peek_matches_next() {
        let mut w = workload(10.0, 4);
        let peeked = w.peek_next_arrival();
        assert_eq!(w.next_request().arrival, peeked);
    }

    #[test]
    fn erlang_math() {
        let w = workload(50.0, 5);
        // 50 flows/s * 180 s / 9 sources = 1000 erlangs per source.
        assert!((w.per_source_erlangs() - 1000.0).abs() < 1e-9);
        assert_eq!(w.lambda(), 50.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_lambda_rejected() {
        let mut rng = SimRng::seed_from(0);
        let _ = PoissonWorkload::new(0.0, 180.0, 9, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn zero_sources_rejected() {
        let mut rng = SimRng::seed_from(0);
        let _ = PoissonWorkload::new(1.0, 180.0, 0, &mut rng);
    }

    #[test]
    fn bursty_mean_rate_matches_construction() {
        let mut rng = SimRng::seed_from(11);
        let w = BurstyWorkload::with_mean_rate(20.0, 1.8, 60.0, 180.0, 9, &mut rng);
        assert!((w.mean_rate() - 20.0).abs() < 1e-9);
        // Explicit constructor arithmetic: (2·30 + 10·60)/90.
        let mut rng2 = SimRng::seed_from(12);
        let w2 = BurstyWorkload::new(2.0, 10.0, 30.0, 60.0, 180.0, 9, &mut rng2);
        assert!((w2.mean_rate() - (2.0 * 30.0 + 10.0 * 60.0) / 90.0).abs() < 1e-9);
    }

    #[test]
    fn bursty_measured_rate_converges_to_mean() {
        let mut rng = SimRng::seed_from(13);
        let mut w = BurstyWorkload::with_mean_rate(20.0, 1.8, 60.0, 180.0, 9, &mut rng);
        let n = 200_000;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            let req = w.next_request();
            assert!(req.arrival >= last, "arrivals must be nondecreasing");
            last = req.arrival;
        }
        let measured = n as f64 / last.as_secs();
        // The modulating chain only completes ~170 sojourns in this
        // window, so the estimator is noisy; 10% brackets the mean.
        assert!(
            (measured - 20.0).abs() < 2.0,
            "long-run rate {measured} should approach 20"
        );
    }

    #[test]
    fn bursty_interarrivals_are_overdispersed() {
        // The defining property vs Poisson: variance of per-window counts
        // exceeds the mean (index of dispersion > 1).
        let window = 30.0;
        let count_dispersion = |reqs: &[f64]| -> f64 {
            let max_t = reqs.last().copied().unwrap_or(0.0);
            let bins = (max_t / window).floor() as usize;
            let mut counts = vec![0.0f64; bins];
            for &t in reqs {
                let b = (t / window) as usize;
                if b < bins {
                    counts[b] += 1.0;
                }
            }
            let mean = counts.iter().sum::<f64>() / bins as f64;
            let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / bins as f64;
            var / mean
        };
        let mut rng = SimRng::seed_from(14);
        let mut bursty = BurstyWorkload::with_mean_rate(20.0, 1.9, 120.0, 180.0, 9, &mut rng);
        let bursty_times: Vec<f64> = (0..100_000)
            .map(|_| bursty.next_request().arrival.as_secs())
            .collect();
        let mut rng2 = SimRng::seed_from(14);
        let mut poisson = PoissonWorkload::new(20.0, 180.0, 9, &mut rng2);
        let poisson_times: Vec<f64> = (0..100_000)
            .map(|_| poisson.next_request().arrival.as_secs())
            .collect();
        let d_bursty = count_dispersion(&bursty_times);
        let d_poisson = count_dispersion(&poisson_times);
        assert!(
            d_bursty > 1.5,
            "MMPP dispersion {d_bursty} should be well above Poisson's 1"
        );
        assert!(
            d_poisson < 1.3,
            "Poisson dispersion {d_poisson} should be near 1"
        );
        assert!(d_bursty > d_poisson);
    }

    #[test]
    fn bursty_state_toggles() {
        let mut rng = SimRng::seed_from(15);
        let mut w = BurstyWorkload::new(1.0, 50.0, 5.0, 5.0, 180.0, 3, &mut rng);
        let mut saw_burst = false;
        let mut saw_calm = false;
        for _ in 0..2_000 {
            let _ = w.next_request();
            if w.in_burst() {
                saw_burst = true;
            } else {
                saw_calm = true;
            }
        }
        assert!(saw_burst && saw_calm, "chain must visit both states");
    }

    #[test]
    fn bursty_deterministic_per_seed() {
        let mut a = SimRng::seed_from(16);
        let mut b = SimRng::seed_from(16);
        let mut wa = BurstyWorkload::with_mean_rate(10.0, 1.5, 30.0, 180.0, 9, &mut a);
        let mut wb = BurstyWorkload::with_mean_rate(10.0, 1.5, 30.0, 180.0, 9, &mut b);
        for _ in 0..500 {
            assert_eq!(wa.next_request(), wb.next_request());
        }
    }

    #[test]
    #[should_panic(expected = "burstiness must lie in [1, 2)")]
    fn bursty_rejects_extreme_burstiness() {
        let mut rng = SimRng::seed_from(17);
        let _ = BurstyWorkload::with_mean_rate(10.0, 2.5, 30.0, 180.0, 9, &mut rng);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bursty_rejects_zero_rate() {
        let mut rng = SimRng::seed_from(18);
        let _ = BurstyWorkload::new(0.0, 1.0, 1.0, 1.0, 1.0, 1, &mut rng);
    }

    #[test]
    fn exponential_sampler_is_byte_identical_to_legacy_draws() {
        // The default sampler must consume exactly the draws the old
        // direct `exp_duration` call did, so seeded scenarios replay.
        let sampler = HoldingSampler::exponential(180.0);
        let mut a = SimRng::seed_from(21);
        let mut b = SimRng::seed_from(21);
        for _ in 0..1_000 {
            assert_eq!(sampler.draw(&mut a), b.exp_duration(180.0));
        }
    }

    #[test]
    fn pareto_sampler_matches_mean_and_is_heavy_tailed() {
        let sampler = HoldingSampler::pareto(180.0, 2.5);
        assert_eq!(sampler.mean_secs(), 180.0);
        let mut rng = SimRng::seed_from(22);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| sampler.draw(&mut rng).as_secs()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        assert!((mean - 180.0).abs() < 8.0, "pareto mean {mean}");
        // Minimum is the scale parameter, never below it.
        let x_min = 180.0 * 1.5 / 2.5;
        assert!(draws.iter().all(|&d| d >= x_min - 1e-9));
        // Heavy tail: the max draw dwarfs anything exponential sampling
        // of the same mean plausibly produces over n draws.
        let max = draws.iter().cloned().fold(0.0, f64::max);
        assert!(max > 20.0 * 180.0, "pareto max {max} not heavy-tailed");
    }

    #[test]
    fn pareto_holding_leaves_arrivals_untouched() {
        let mut a = workload(10.0, 23);
        let mut b = workload(10.0, 23).with_holding(HoldingSampler::pareto(180.0, 2.0));
        for _ in 0..500 {
            let ra = a.next_request();
            let rb = b.next_request();
            assert_eq!(ra.arrival, rb.arrival);
            assert_eq!(ra.source_index, rb.source_index);
        }
    }

    #[test]
    #[should_panic(expected = "shape must exceed 1")]
    fn pareto_rejects_infinite_mean_shape() {
        let _ = HoldingSampler::pareto(180.0, 1.0);
    }

    #[test]
    fn diurnal_rate_follows_the_envelope() {
        let env = RateEnvelope::Diurnal {
            amplitude: 0.8,
            period_secs: 1_000.0,
        };
        let mut rng = SimRng::seed_from(24);
        let mut w = ModulatedWorkload::new(20.0, env, 180.0, 9, &mut rng);
        // Count arrivals in the rising half (factor > 1) vs falling half
        // of each period over many cycles.
        let mut rising = 0usize;
        let mut falling = 0usize;
        let mut last = SimTime::ZERO;
        for _ in 0..100_000 {
            let req = w.next_request();
            assert!(req.arrival >= last, "arrivals must be nondecreasing");
            last = req.arrival;
            let phase = req.arrival.as_secs() % 1_000.0;
            if phase < 500.0 {
                rising += 1;
            } else {
                falling += 1;
            }
        }
        let ratio = rising as f64 / falling as f64;
        // With amplitude 0.8 the half-period mean rates are
        // 1 + 1.6/π vs 1 − 1.6/π, a ratio of ~3.1.
        assert!(
            ratio > 2.5,
            "diurnal peak/trough arrival ratio {ratio} too flat"
        );
        // The long-run rate still averages to the mean.
        let measured = 100_000.0 / last.as_secs();
        assert!((measured - 20.0).abs() < 1.0, "long-run rate {measured}");
    }

    #[test]
    fn flash_crowd_window_multiplies_arrivals() {
        let env = RateEnvelope::Window {
            start_secs: 500.0,
            duration_secs: 500.0,
            multiplier: 5.0,
        };
        assert!(env.in_window(600.0));
        assert!(!env.in_window(499.0));
        assert!(!env.in_window(1_000.0));
        let mut rng = SimRng::seed_from(25);
        let mut w = ModulatedWorkload::new(10.0, env, 180.0, 9, &mut rng);
        let mut inside = 0usize;
        let mut before = 0usize;
        loop {
            let req = w.next_request();
            let t = req.arrival.as_secs();
            if t >= 1_000.0 {
                break;
            }
            if t < 500.0 {
                before += 1;
            } else {
                inside += 1;
            }
        }
        let ratio = inside as f64 / before as f64;
        assert!(
            (ratio - 5.0).abs() < 1.5,
            "window arrival ratio {ratio} should be ~5"
        );
    }

    #[test]
    fn modulated_deterministic_per_seed() {
        let env = RateEnvelope::Diurnal {
            amplitude: 0.5,
            period_secs: 600.0,
        };
        let mut a = SimRng::seed_from(26);
        let mut b = SimRng::seed_from(26);
        let mut wa = ModulatedWorkload::new(10.0, env, 180.0, 9, &mut a);
        let mut wb = ModulatedWorkload::new(10.0, env, 180.0, 9, &mut b);
        for _ in 0..500 {
            assert_eq!(wa.next_request(), wb.next_request());
        }
        assert_eq!(wa.mean_rate(), 10.0);
        assert_eq!(wa.envelope(), &env);
    }

    #[test]
    #[should_panic(expected = "amplitude must lie in [0, 1)")]
    fn diurnal_rejects_full_amplitude() {
        let mut rng = SimRng::seed_from(27);
        let _ = ModulatedWorkload::new(
            10.0,
            RateEnvelope::Diurnal {
                amplitude: 1.0,
                period_secs: 600.0,
            },
            180.0,
            9,
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "multiplier must be >= 1")]
    fn window_rejects_damping_multiplier() {
        let mut rng = SimRng::seed_from(28);
        let _ = ModulatedWorkload::new(
            10.0,
            RateEnvelope::Window {
                start_secs: 0.0,
                duration_secs: 10.0,
                multiplier: 0.5,
            },
            180.0,
            9,
            &mut rng,
        );
    }
}
