//! The stochastic workload of §5.1: Poisson flow-request arrivals with
//! exponentially distributed lifetimes.

use crate::{Duration, SimRng, SimTime};

/// One anycast flow-establishment request drawn from the workload.
///
/// The source is an index into the experiment's source list (the hosts at
/// odd-numbered routers in the paper); the holding time is how long the
/// flow occupies its reservation if admitted. The crate is deliberately
/// independent of the network layer, so sources are plain indices here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRequest {
    /// Index into the experiment's list of source nodes.
    pub source_index: usize,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Lifetime of the flow once admitted.
    pub holding: Duration,
}

/// Generates the paper's traffic model: requests form a Poisson process
/// with rate `lambda` (flows per second across the whole network); each
/// request picks a source uniformly at random; lifetimes are exponential
/// with the configured mean (180 s in §5.1).
#[derive(Debug, Clone)]
pub struct PoissonWorkload {
    lambda: f64,
    mean_holding_secs: f64,
    source_count: usize,
    next_arrival: SimTime,
    arrivals_rng: SimRng,
    holding_rng: SimRng,
    source_rng: SimRng,
}

impl PoissonWorkload {
    /// Creates a workload generator.
    ///
    /// * `lambda` — total request rate in flows/second;
    /// * `mean_holding_secs` — mean exponential lifetime;
    /// * `source_count` — number of candidate sources (uniformly likely);
    /// * `rng` — the seed stream; three independent sub-streams are forked
    ///   so arrival times are invariant to how lifetimes are consumed.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` or `mean_holding_secs` are not positive/finite,
    /// or `source_count` is zero.
    pub fn new(lambda: f64, mean_holding_secs: f64, source_count: usize, rng: &mut SimRng) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "arrival rate must be positive and finite, got {lambda}"
        );
        assert!(
            mean_holding_secs.is_finite() && mean_holding_secs > 0.0,
            "mean holding time must be positive and finite, got {mean_holding_secs}"
        );
        assert!(source_count > 0, "need at least one source");
        let mut arrivals_rng = rng.fork();
        let holding_rng = rng.fork();
        let source_rng = rng.fork();
        let first = SimTime::ZERO + Duration::from_secs(arrivals_rng.exp(1.0 / lambda));
        PoissonWorkload {
            lambda,
            mean_holding_secs,
            source_count,
            next_arrival: first,
            arrivals_rng,
            holding_rng,
            source_rng,
        }
    }

    /// The configured total arrival rate.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The offered traffic intensity per source in erlangs:
    /// `(λ / sources) · mean_holding`.
    pub fn per_source_erlangs(&self) -> f64 {
        self.lambda * self.mean_holding_secs / self.source_count as f64
    }

    /// Arrival time of the next request without consuming it.
    pub fn peek_next_arrival(&self) -> SimTime {
        self.next_arrival
    }

    /// Draws the next request and advances the arrival process.
    pub fn next_request(&mut self) -> FlowRequest {
        let arrival = self.next_arrival;
        let gap = self.arrivals_rng.exp(1.0 / self.lambda);
        self.next_arrival = arrival + Duration::from_secs(gap);
        FlowRequest {
            source_index: self.source_rng.below(self.source_count),
            arrival,
            holding: self.holding_rng.exp_duration(self.mean_holding_secs),
        }
    }
}

/// A two-state Markov-modulated Poisson process (MMPP-2): the arrival
/// rate alternates between a *calm* and a *burst* state with exponential
/// sojourn times — the standard bursty-traffic generalisation of the
/// paper's plain Poisson assumption.
///
/// The long-run mean rate is the sojourn-weighted average of the two
/// state rates, so an MMPP can be constructed to match a Poisson
/// workload's mean while concentrating arrivals in bursts
/// ([`BurstyWorkload::with_mean_rate`]).
#[derive(Debug, Clone)]
pub struct BurstyWorkload {
    calm_rate: f64,
    burst_rate: f64,
    mean_calm_secs: f64,
    mean_burst_secs: f64,
    mean_holding_secs: f64,
    source_count: usize,
    in_burst: bool,
    state_ends: SimTime,
    clock: SimTime,
    arrivals_rng: SimRng,
    state_rng: SimRng,
    holding_rng: SimRng,
    source_rng: SimRng,
}

impl BurstyWorkload {
    /// Creates an MMPP-2 workload with explicit state rates and mean
    /// sojourn times.
    ///
    /// # Panics
    ///
    /// Panics if any rate or sojourn/holding time is non-positive or
    /// non-finite, or `source_count` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        calm_rate: f64,
        burst_rate: f64,
        mean_calm_secs: f64,
        mean_burst_secs: f64,
        mean_holding_secs: f64,
        source_count: usize,
        rng: &mut SimRng,
    ) -> Self {
        for (name, v) in [
            ("calm rate", calm_rate),
            ("burst rate", burst_rate),
            ("mean calm sojourn", mean_calm_secs),
            ("mean burst sojourn", mean_burst_secs),
            ("mean holding time", mean_holding_secs),
        ] {
            assert!(
                v.is_finite() && v > 0.0,
                "{name} must be positive and finite, got {v}"
            );
        }
        assert!(source_count > 0, "need at least one source");
        let arrivals_rng = rng.fork();
        let mut state_rng = rng.fork();
        let holding_rng = rng.fork();
        let source_rng = rng.fork();
        let first_sojourn = state_rng.exp(mean_calm_secs);
        BurstyWorkload {
            calm_rate,
            burst_rate,
            mean_calm_secs,
            mean_burst_secs,
            mean_holding_secs,
            source_count,
            in_burst: false,
            state_ends: SimTime::from_secs(first_sojourn),
            clock: SimTime::ZERO,
            arrivals_rng,
            state_rng,
            holding_rng,
            source_rng,
        }
    }

    /// Creates an MMPP-2 whose long-run mean rate equals `mean_rate`,
    /// with the burst state `burstiness ≥ 1` times hotter than the mean
    /// and equal mean sojourns in both states.
    ///
    /// `burstiness = 1` degenerates to (approximately) plain Poisson.
    ///
    /// # Panics
    ///
    /// Panics on non-positive/non-finite arguments, `burstiness < 1`, or
    /// `burstiness ≥ 2` (the calm rate would be non-positive with equal
    /// sojourns), or a zero `source_count`.
    pub fn with_mean_rate(
        mean_rate: f64,
        burstiness: f64,
        mean_sojourn_secs: f64,
        mean_holding_secs: f64,
        source_count: usize,
        rng: &mut SimRng,
    ) -> Self {
        assert!(
            (1.0..2.0).contains(&burstiness),
            "burstiness must lie in [1, 2) for equal sojourns, got {burstiness}"
        );
        let burst_rate = mean_rate * burstiness;
        let calm_rate = mean_rate * (2.0 - burstiness);
        Self::new(
            calm_rate.max(mean_rate * 1e-6),
            burst_rate,
            mean_sojourn_secs,
            mean_sojourn_secs,
            mean_holding_secs,
            source_count,
            rng,
        )
    }

    /// The long-run mean arrival rate.
    pub fn mean_rate(&self) -> f64 {
        (self.calm_rate * self.mean_calm_secs + self.burst_rate * self.mean_burst_secs)
            / (self.mean_calm_secs + self.mean_burst_secs)
    }

    /// Whether the modulating chain is currently in the burst state.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    fn current_rate(&self) -> f64 {
        if self.in_burst {
            self.burst_rate
        } else {
            self.calm_rate
        }
    }

    /// Draws the next request and advances both the arrival process and
    /// the modulating chain.
    pub fn next_request(&mut self) -> FlowRequest {
        // Advance through state boundaries until an arrival lands inside
        // the current sojourn (memorylessness lets us redraw the
        // exponential gap at each boundary).
        loop {
            let gap = self.arrivals_rng.exp(1.0 / self.current_rate());
            let candidate = self.clock + Duration::from_secs(gap);
            if candidate <= self.state_ends {
                self.clock = candidate;
                return FlowRequest {
                    source_index: self.source_rng.below(self.source_count),
                    arrival: candidate,
                    holding: self.holding_rng.exp_duration(self.mean_holding_secs),
                };
            }
            // Cross into the next state.
            self.clock = self.state_ends;
            self.in_burst = !self.in_burst;
            let sojourn = if self.in_burst {
                self.state_rng.exp(self.mean_burst_secs)
            } else {
                self.state_rng.exp(self.mean_calm_secs)
            };
            self.state_ends = self.clock + Duration::from_secs(sojourn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(lambda: f64, seed: u64) -> PoissonWorkload {
        let mut rng = SimRng::seed_from(seed);
        PoissonWorkload::new(lambda, 180.0, 9, &mut rng)
    }

    #[test]
    fn arrival_rate_matches_lambda() {
        let mut w = workload(20.0, 1);
        let n = 100_000;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            let req = w.next_request();
            assert!(req.arrival >= last, "arrivals must be nondecreasing");
            last = req.arrival;
        }
        let measured_rate = n as f64 / last.as_secs();
        assert!(
            (measured_rate - 20.0).abs() < 0.5,
            "measured rate {measured_rate}"
        );
    }

    #[test]
    fn holding_mean_matches() {
        let mut w = workload(5.0, 2);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| w.next_request().holding.as_secs()).sum();
        let mean = total / n as f64;
        assert!((mean - 180.0).abs() < 4.0, "mean holding {mean}");
    }

    #[test]
    fn sources_uniform() {
        let mut w = workload(5.0, 3);
        let mut counts = [0usize; 9];
        let n = 90_000;
        for _ in 0..n {
            counts[w.next_request().source_index] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = c as f64 / n as f64;
            assert!((p - 1.0 / 9.0).abs() < 0.01, "source {i} probability {p}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = workload(10.0, 9);
        let mut b = workload(10.0, 9);
        for _ in 0..100 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    fn peek_matches_next() {
        let mut w = workload(10.0, 4);
        let peeked = w.peek_next_arrival();
        assert_eq!(w.next_request().arrival, peeked);
    }

    #[test]
    fn erlang_math() {
        let w = workload(50.0, 5);
        // 50 flows/s * 180 s / 9 sources = 1000 erlangs per source.
        assert!((w.per_source_erlangs() - 1000.0).abs() < 1e-9);
        assert_eq!(w.lambda(), 50.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_lambda_rejected() {
        let mut rng = SimRng::seed_from(0);
        let _ = PoissonWorkload::new(0.0, 180.0, 9, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn zero_sources_rejected() {
        let mut rng = SimRng::seed_from(0);
        let _ = PoissonWorkload::new(1.0, 180.0, 0, &mut rng);
    }

    #[test]
    fn bursty_mean_rate_matches_construction() {
        let mut rng = SimRng::seed_from(11);
        let w = BurstyWorkload::with_mean_rate(20.0, 1.8, 60.0, 180.0, 9, &mut rng);
        assert!((w.mean_rate() - 20.0).abs() < 1e-9);
        // Explicit constructor arithmetic: (2·30 + 10·60)/90.
        let mut rng2 = SimRng::seed_from(12);
        let w2 = BurstyWorkload::new(2.0, 10.0, 30.0, 60.0, 180.0, 9, &mut rng2);
        assert!((w2.mean_rate() - (2.0 * 30.0 + 10.0 * 60.0) / 90.0).abs() < 1e-9);
    }

    #[test]
    fn bursty_measured_rate_converges_to_mean() {
        let mut rng = SimRng::seed_from(13);
        let mut w = BurstyWorkload::with_mean_rate(20.0, 1.8, 60.0, 180.0, 9, &mut rng);
        let n = 200_000;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            let req = w.next_request();
            assert!(req.arrival >= last, "arrivals must be nondecreasing");
            last = req.arrival;
        }
        let measured = n as f64 / last.as_secs();
        // The modulating chain only completes ~170 sojourns in this
        // window, so the estimator is noisy; 10% brackets the mean.
        assert!(
            (measured - 20.0).abs() < 2.0,
            "long-run rate {measured} should approach 20"
        );
    }

    #[test]
    fn bursty_interarrivals_are_overdispersed() {
        // The defining property vs Poisson: variance of per-window counts
        // exceeds the mean (index of dispersion > 1).
        let window = 30.0;
        let count_dispersion = |reqs: &[f64]| -> f64 {
            let max_t = reqs.last().copied().unwrap_or(0.0);
            let bins = (max_t / window).floor() as usize;
            let mut counts = vec![0.0f64; bins];
            for &t in reqs {
                let b = (t / window) as usize;
                if b < bins {
                    counts[b] += 1.0;
                }
            }
            let mean = counts.iter().sum::<f64>() / bins as f64;
            let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / bins as f64;
            var / mean
        };
        let mut rng = SimRng::seed_from(14);
        let mut bursty = BurstyWorkload::with_mean_rate(20.0, 1.9, 120.0, 180.0, 9, &mut rng);
        let bursty_times: Vec<f64> = (0..100_000)
            .map(|_| bursty.next_request().arrival.as_secs())
            .collect();
        let mut rng2 = SimRng::seed_from(14);
        let mut poisson = PoissonWorkload::new(20.0, 180.0, 9, &mut rng2);
        let poisson_times: Vec<f64> = (0..100_000)
            .map(|_| poisson.next_request().arrival.as_secs())
            .collect();
        let d_bursty = count_dispersion(&bursty_times);
        let d_poisson = count_dispersion(&poisson_times);
        assert!(
            d_bursty > 1.5,
            "MMPP dispersion {d_bursty} should be well above Poisson's 1"
        );
        assert!(
            d_poisson < 1.3,
            "Poisson dispersion {d_poisson} should be near 1"
        );
        assert!(d_bursty > d_poisson);
    }

    #[test]
    fn bursty_state_toggles() {
        let mut rng = SimRng::seed_from(15);
        let mut w = BurstyWorkload::new(1.0, 50.0, 5.0, 5.0, 180.0, 3, &mut rng);
        let mut saw_burst = false;
        let mut saw_calm = false;
        for _ in 0..2_000 {
            let _ = w.next_request();
            if w.in_burst() {
                saw_burst = true;
            } else {
                saw_calm = true;
            }
        }
        assert!(saw_burst && saw_calm, "chain must visit both states");
    }

    #[test]
    fn bursty_deterministic_per_seed() {
        let mut a = SimRng::seed_from(16);
        let mut b = SimRng::seed_from(16);
        let mut wa = BurstyWorkload::with_mean_rate(10.0, 1.5, 30.0, 180.0, 9, &mut a);
        let mut wb = BurstyWorkload::with_mean_rate(10.0, 1.5, 30.0, 180.0, 9, &mut b);
        for _ in 0..500 {
            assert_eq!(wa.next_request(), wb.next_request());
        }
    }

    #[test]
    #[should_panic(expected = "burstiness must lie in [1, 2)")]
    fn bursty_rejects_extreme_burstiness() {
        let mut rng = SimRng::seed_from(17);
        let _ = BurstyWorkload::with_mean_rate(10.0, 2.5, 30.0, 180.0, 9, &mut rng);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bursty_rejects_zero_rate() {
        let mut rng = SimRng::seed_from(18);
        let _ = BurstyWorkload::new(0.0, 1.0, 1.0, 1.0, 1.0, 1, &mut rng);
    }
}
