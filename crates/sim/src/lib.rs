//! Discrete-event simulation substrate.
//!
//! The paper ran its experiments on Mesquite CSIM, a commercial
//! process-oriented simulation toolkit written in C. This crate is the
//! from-scratch Rust replacement: a deterministic, event-oriented
//! discrete-event engine plus the stochastic processes and output statistics
//! the evaluation needs.
//!
//! * [`SimTime`] / [`Duration`] — simulated seconds with a total order;
//! * [`EventQueue`] / [`Engine`] — a time-ordered heap with FIFO tie-break
//!   and a driver loop;
//! * [`SimRng`] — a seeded PRNG with exponential, uniform and weighted
//!   categorical sampling (including without-replacement);
//! * [`TimerWheel`] — keyed, cancellable deadlines (setup timeouts,
//!   soft-state expiry) popped deterministically off the event queue;
//! * [`stats`] — counters, Welford mean/variance, confidence intervals,
//!   time-weighted averages and an admission-probability estimator with
//!   warm-up truncation;
//! * [`workload`] — the Poisson anycast-request generator of §5.1;
//! * [`pool`] — a scoped-thread `parallel_map` whose output is bit-identical
//!   for any worker count, shared by the sweep engine and the analysis
//!   fixed-point batch solver.
//!
//! # Example
//!
//! ```rust
//! use anycast_sim::{Duration, Engine, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine = Engine::new();
//! engine.schedule_at(SimTime::ZERO, Ev::Ping(0));
//! let mut count = 0;
//! engine.run(|eng, now, Ev::Ping(n)| {
//!     count += 1;
//!     if n < 9 {
//!         eng.schedule_in(now, Duration::from_secs(1.0), Ev::Ping(n + 1));
//!     }
//! });
//! assert_eq!(count, 10);
//! assert_eq!(engine.now(), SimTime::from_secs(9.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
mod engine;
mod event;
pub mod pool;
mod random;
pub mod stats;
mod time;
mod timer;
pub mod workload;

pub use clock::{TimeSource, VirtualClock, WallClock};
pub use engine::Engine;
pub use event::EventQueue;
pub use random::SimRng;
pub use time::{Duration, SimTime};
pub use timer::TimerWheel;
