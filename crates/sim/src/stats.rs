//! Output statistics: counters, running moments, time averages and the
//! admission-probability estimator used by every experiment.

use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Running mean and variance via Welford's online algorithm.
///
/// ```rust
/// use anycast_sim::stats::MeanVar;
/// let mut m = MeanVar::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.record(x);
/// }
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanVar {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Normal-approximation 95% confidence half-width (`1.96 · SE`).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err()
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. the number of
/// active flows or the reserved bandwidth of a link over simulated time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    integral: f64,
    start_time: SimTime,
}

impl TimeWeighted {
    /// Creates an accumulator starting at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_time: t0,
            last_value: v0,
            integral: 0.0,
            start_time: t0,
        }
    }

    /// Records that the signal changed to `value` at time `t`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `t` precedes the previous update. In
    /// release builds the backwards segment is saturated to zero width —
    /// the integral is never corrupted by a negative `dt` — and the clock
    /// stays at its high-water mark.
    pub fn update(&mut self, t: SimTime, value: f64) {
        debug_assert!(
            t >= self.last_time,
            "TimeWeighted::update at {t} precedes previous update at {}",
            self.last_time
        );
        let dt = (t.as_secs() - self.last_time.as_secs()).max(0.0);
        self.integral += self.last_value * dt;
        self.last_time = self.last_time.max(t);
        self.last_value = value;
    }

    /// The time average over `[t0, t]`, closing the last segment at `t`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `t` precedes the previous update; in
    /// release builds the out-of-order tail contributes zero width.
    pub fn average_until(&self, t: SimTime) -> f64 {
        debug_assert!(
            t >= self.last_time,
            "TimeWeighted::average_until at {t} precedes previous update at {}",
            self.last_time
        );
        let span = t.as_secs() - self.start_time.as_secs();
        if span <= 0.0 {
            return self.last_value;
        }
        let tail = (t.as_secs() - self.last_time.as_secs()).max(0.0);
        (self.integral + self.last_value * tail) / span
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// Outcome counters for one admission-control run: the estimator behind
/// *Admission Probability* (Figures 3–6) and *average number of retrials*
/// (Figure 7).
///
/// Requests arriving before the warm-up cutoff are counted separately and
/// excluded from the reported statistics, removing initial-transient bias.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdmissionStats {
    warmup_end: SimTime,
    warmup_requests: u64,
    offered: u64,
    admitted: u64,
    tries: MeanVar,
    tries_admitted: MeanVar,
    tries_rejected: MeanVar,
    tries_hist: Histogram,
}

impl AdmissionStats {
    /// Creates an estimator that ignores requests before `warmup_end`.
    pub fn new(warmup_end: SimTime) -> Self {
        AdmissionStats {
            warmup_end,
            warmup_requests: 0,
            offered: 0,
            admitted: 0,
            tries: MeanVar::new(),
            tries_admitted: MeanVar::new(),
            tries_rejected: MeanVar::new(),
            tries_hist: Histogram::new(),
        }
    }

    /// Records the outcome of one flow request: whether it was admitted and
    /// how many destinations were tried (≥ 1 whenever a selection happened).
    pub fn record(&mut self, at: SimTime, admitted: bool, tries: u32) {
        if at < self.warmup_end {
            self.warmup_requests += 1;
            return;
        }
        self.offered += 1;
        if admitted {
            self.admitted += 1;
            self.tries_admitted.record(tries as f64);
        } else {
            self.tries_rejected.record(tries as f64);
        }
        self.tries.record(tries as f64);
        self.tries_hist.record(tries);
    }

    /// Requests observed after warm-up.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Requests admitted after warm-up.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests rejected after warm-up.
    pub fn rejected(&self) -> u64 {
        self.offered - self.admitted
    }

    /// Requests discarded as warm-up transient.
    pub fn warmup_requests(&self) -> u64 {
        self.warmup_requests
    }

    /// The admission probability estimate `admitted / offered`
    /// (1.0 when nothing was offered, matching the paper's low-load limit).
    pub fn admission_probability(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.admitted as f64 / self.offered as f64
        }
    }

    /// 95% half-width for the admission probability via the Wilson score
    /// interval (binomial proportion).
    ///
    /// The normal (Wald) approximation `1.96·√(p(1−p)/n)` collapses to a
    /// zero-width interval whenever the estimate is exactly 0 or 1 — which
    /// every low-load point hits — overstating certainty. Wilson keeps
    /// honest positive width there: at `p̂ = 1` the half-width is
    /// `z²/(2n) / (1 + z²/n)`, shrinking like `1/n` but never zero while
    /// `n` is finite.
    pub fn ap_ci95_half_width(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        let n = self.offered as f64;
        let p = self.admission_probability();
        let z = 1.96;
        let z2 = z * z;
        z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / (1.0 + z2 / n)
    }

    /// Mean number of destinations tried per request (Figure 7's metric).
    pub fn mean_tries(&self) -> f64 {
        self.tries.mean()
    }

    /// Mean number of *re*-trials per request: tries beyond the first.
    ///
    /// Computed directly from the tries histogram (`Σ (t−1)·count(t)` over
    /// `t ≥ 1`) rather than by clamping `mean_tries − 1` at zero — a clamp
    /// would silently mask a tries-accounting bug (a request recorded with
    /// zero tries) instead of surfacing it. Debug builds cross-check the
    /// histogram against the running [`mean_tries`](Self::mean_tries)
    /// accumulator.
    pub fn mean_retrials(&self) -> f64 {
        let total = self.tries_hist.total();
        if total == 0 {
            return 0.0;
        }
        debug_assert_eq!(
            total,
            self.tries.count(),
            "tries histogram and running-mean accumulator disagree on count"
        );
        debug_assert!(
            (self.tries_hist.mean() - self.tries.mean()).abs() <= 1e-9,
            "tries histogram mean {} drifted from running mean {}",
            self.tries_hist.mean(),
            self.tries.mean()
        );
        let excess: u64 = self
            .tries_hist
            .buckets()
            .iter()
            .enumerate()
            .map(|(t, &c)| (t as u64).saturating_sub(1) * c)
            .sum();
        debug_assert!(
            self.tries_hist.count(0) == 0,
            "a request was recorded with zero tries; mean_retrials would \
             diverge from mean_tries - 1"
        );
        excess as f64 / total as f64
    }

    /// Mean tries among admitted requests only.
    pub fn mean_tries_admitted(&self) -> f64 {
        self.tries_admitted.mean()
    }

    /// Mean tries among rejected requests only.
    pub fn mean_tries_rejected(&self) -> f64 {
        self.tries_rejected.mean()
    }

    /// Distribution of tries per request (index = number of tries).
    pub fn tries_histogram(&self) -> &Histogram {
        &self.tries_hist
    }
}

/// A dense histogram over small non-negative integers (e.g. tries per
/// request, which is bounded by the group size).
///
/// ```rust
/// use anycast_sim::stats::Histogram;
/// let mut h = Histogram::new();
/// for v in [1, 1, 2, 1, 3] {
///     h.record(v);
/// }
/// assert_eq!(h.count(1), 3);
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.quantile(0.5), Some(1));
/// assert_eq!(h.quantile(1.0), Some(3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u32) {
        let idx = value as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of observations equal to `value`.
    pub fn count(&self, value: u32) -> u64 {
        self.counts.get(value as usize).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The raw bucket counts, index = value.
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// The smallest value `v` with `P(X ≤ v) ≥ q`; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q ≤ 1`.
    pub fn quantile(&self, q: f64) -> Option<u32> {
        assert!(q > 0.0 && q <= 1.0, "quantile must lie in (0, 1], got {q}");
        if self.total == 0 {
            return None;
        }
        let threshold = (q * self.total as f64).ceil() as u64;
        let mut cumulative = 0;
        for (v, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= threshold {
                return Some(v as u32);
            }
        }
        Some(self.counts.len() as u32 - 1)
    }

    /// Mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
    }
}

/// Batch-means estimator: groups a stream of observations into fixed-size
/// batches so that batch averages are approximately independent, giving an
/// honest confidence interval for autocorrelated simulation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batches: MeanVar,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batches: MeanVar::new(),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batches
                .record(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    pub fn batch_count(&self) -> u64 {
        self.batches.count()
    }

    /// Mean over completed batches.
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// 95% half-width over completed batch means.
    pub fn ci95_half_width(&self) -> f64 {
        self.batches.ci95_half_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meanvar_single_and_empty() {
        let mut m = MeanVar::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.std_err(), 0.0);
        m.record(3.5);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn meanvar_matches_closed_form() {
        let mut m = MeanVar::new();
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        for x in data {
            m.record(x);
        }
        assert!((m.mean() - 3.0).abs() < 1e-12);
        assert!((m.variance() - 2.5).abs() < 1e-12);
        assert!((m.std_dev() - 2.5f64.sqrt()).abs() < 1e-12);
        assert!((m.std_err() - (2.5f64 / 5.0).sqrt()).abs() < 1e-12);
        assert!((m.ci95_half_width() - 1.96 * (0.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::from_secs(10.0), 2.0); // 0 for 10s
        tw.update(SimTime::from_secs(20.0), 4.0); // 2 for 10s
        let avg = tw.average_until(SimTime::from_secs(30.0)); // 4 for 10s
        assert!((avg - 2.0).abs() < 1e-12); // (0+20+40)/30
        assert_eq!(tw.current(), 4.0);
    }

    #[test]
    fn time_weighted_zero_span() {
        let tw = TimeWeighted::new(SimTime::from_secs(5.0), 7.0);
        assert_eq!(tw.average_until(SimTime::from_secs(5.0)), 7.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "precedes previous update")]
    fn time_weighted_backwards_update_panics_in_debug() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.update(SimTime::from_secs(10.0), 2.0);
        tw.update(SimTime::from_secs(5.0), 3.0); // regression: was a silent negative dt
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "precedes previous update")]
    fn time_weighted_backwards_average_panics_in_debug() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.update(SimTime::from_secs(10.0), 2.0);
        let _ = tw.average_until(SimTime::from_secs(5.0));
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn time_weighted_backwards_update_saturates_in_release() {
        let mut a = TimeWeighted::new(SimTime::ZERO, 1.0);
        let mut b = TimeWeighted::new(SimTime::ZERO, 1.0);
        a.update(SimTime::from_secs(10.0), 2.0);
        b.update(SimTime::from_secs(10.0), 2.0);
        // The backwards stamp must contribute a zero-width segment, not a
        // negative dt, and must not rewind the clock.
        b.update(SimTime::from_secs(5.0), 2.0);
        assert_eq!(
            a.average_until(SimTime::from_secs(20.0)),
            b.average_until(SimTime::from_secs(20.0))
        );
    }

    #[test]
    fn admission_stats_warmup_excluded() {
        let mut s = AdmissionStats::new(SimTime::from_secs(100.0));
        s.record(SimTime::from_secs(50.0), false, 2); // warm-up
        s.record(SimTime::from_secs(150.0), true, 1);
        s.record(SimTime::from_secs(160.0), true, 2);
        s.record(SimTime::from_secs(170.0), false, 2);
        assert_eq!(s.warmup_requests(), 1);
        assert_eq!(s.offered(), 3);
        assert_eq!(s.admitted(), 2);
        assert_eq!(s.rejected(), 1);
        assert!((s.admission_probability() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_tries() - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_retrials() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_tries_admitted() - 1.5).abs() < 1e-12);
        assert!((s.mean_tries_rejected() - 2.0).abs() < 1e-12);
        assert!(s.ap_ci95_half_width() > 0.0);
    }

    #[test]
    fn admission_stats_empty_is_unity() {
        let s = AdmissionStats::new(SimTime::ZERO);
        assert_eq!(s.admission_probability(), 1.0);
        assert_eq!(s.ap_ci95_half_width(), 0.0);
        assert_eq!(s.mean_retrials(), 0.0);
    }

    #[test]
    fn empty_accumulators_never_produce_nan() {
        // Regression sweep for the zero-denominator audit: every ratio
        // accessor must stay finite on an empty accumulator (empty warm-up
        // windows, all-faulted runs) instead of dividing by zero.
        let s = AdmissionStats::new(SimTime::from_secs(100.0));
        for v in [
            s.admission_probability(),
            s.ap_ci95_half_width(),
            s.mean_tries(),
            s.mean_retrials(),
            s.mean_tries_admitted(),
            s.mean_tries_rejected(),
        ] {
            assert!(v.is_finite(), "empty AdmissionStats accessor returned {v}");
        }

        // Warm-up-only traffic is discarded, so the estimator is still
        // "empty" and must behave identically to the untouched one.
        let mut warm = AdmissionStats::new(SimTime::from_secs(100.0));
        warm.record(SimTime::from_secs(10.0), true, 1);
        warm.record(SimTime::from_secs(20.0), false, 2);
        assert_eq!(warm.offered(), 0);
        assert_eq!(warm.admission_probability(), 1.0);
        assert!(warm.mean_tries().is_finite());

        let m = MeanVar::new();
        for v in [
            m.mean(),
            m.variance(),
            m.std_dev(),
            m.std_err(),
            m.ci95_half_width(),
        ] {
            assert!(v.is_finite(), "empty MeanVar accessor returned {v}");
        }

        let h = Histogram::new();
        assert!(h.mean().is_finite());

        let b = BatchMeans::new(8);
        assert!(b.mean().is_finite());
        assert!(b.ci95_half_width().is_finite());
    }

    #[test]
    fn wilson_interval_has_width_at_extreme_proportions() {
        // Regression: the Wald interval reported zero width at AP = 1 (or
        // 0), claiming perfect certainty at every low-load sweep point.
        let mut all = AdmissionStats::new(SimTime::ZERO);
        let mut none = AdmissionStats::new(SimTime::ZERO);
        for i in 0..100 {
            let t = SimTime::from_secs(i as f64);
            all.record(t, true, 1);
            none.record(t, false, 1);
        }
        assert_eq!(all.admission_probability(), 1.0);
        assert!(all.ap_ci95_half_width() > 0.0, "p = 1 must keep width");
        assert!(none.ap_ci95_half_width() > 0.0, "p = 0 must keep width");
        // Wilson at p = 1: z²/(2n) / (1 + z²/n).
        let z2 = 1.96f64 * 1.96;
        let expected = (z2 / 200.0) / (1.0 + z2 / 100.0);
        assert!((all.ap_ci95_half_width() - expected).abs() < 1e-12);
    }

    #[test]
    fn wilson_width_shrinks_with_sample_size() {
        let stats_at = |n: u64| {
            let mut s = AdmissionStats::new(SimTime::ZERO);
            for i in 0..n {
                s.record(SimTime::from_secs(i as f64), i % 2 == 0, 1);
            }
            s.ap_ci95_half_width()
        };
        let w100 = stats_at(100);
        let w10000 = stats_at(10_000);
        assert!(w100 > w10000);
        // At p = 1/2 Wilson and Wald agree to O(1/n); sanity-check scale.
        assert!((w10000 - 1.96 * (0.25f64 / 10_000.0).sqrt()).abs() < 1e-4);
    }

    #[test]
    fn mean_retrials_comes_from_histogram() {
        let mut s = AdmissionStats::new(SimTime::ZERO);
        for (tries, admitted) in [(1, true), (3, true), (2, false), (5, false)] {
            s.record(SimTime::from_secs(1.0), admitted, tries);
        }
        // Retrials: 0 + 2 + 1 + 4 = 7 over 4 requests.
        assert!((s.mean_retrials() - 7.0 / 4.0).abs() < 1e-12);
        assert!((s.mean_retrials() - (s.mean_tries() - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let mut h = Histogram::new();
        for v in [1u32, 2, 1, 1, 5, 2] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(1), 3);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.count(9), 0);
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(0.83), Some(2));
        assert_eq!(h.quantile(1.0), Some(5));
        assert!((h.mean() - 12.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.buckets(), &[0, 3, 2, 0, 0, 1]);
    }

    #[test]
    fn histogram_empty_and_merge() {
        let mut a = Histogram::new();
        assert_eq!(a.quantile(0.5), None);
        assert_eq!(a.mean(), 0.0);
        a.record(0);
        let mut b = Histogram::new();
        b.record(3);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(3), 1);
    }

    #[test]
    #[should_panic(expected = "quantile must lie in (0, 1]")]
    fn histogram_bad_quantile_panics() {
        let h = Histogram::new();
        let _ = h.quantile(0.0);
    }

    #[test]
    fn batch_means_groups_correctly() {
        let mut b = BatchMeans::new(10);
        for i in 0..95 {
            b.record(i as f64);
        }
        assert_eq!(b.batch_count(), 9); // last 5 observations pending
                                        // Batch means are 4.5, 14.5, ..., 84.5, averaging 44.5.
        assert!((b.mean() - 44.5).abs() < 1e-12);
        assert!(b.ci95_half_width() > 0.0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let _ = BatchMeans::new(0);
    }
}
