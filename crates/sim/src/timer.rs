//! A keyed deadline structure for soft timers riding on the event queue.
//!
//! The two-phase signalling engine and the soft-state refresh machinery
//! both need *cancellable* timers: "expire this hold at `t + timeout`
//! unless it is confirmed first". A [`TimerWheel`] tracks one pending
//! deadline per key over a binary heap with generation-stamped lazy
//! cancellation — re-arming or cancelling a key invalidates its old heap
//! entry without touching the heap, and stale entries are skipped on pop.
//!
//! The wheel does not run time itself; the owning simulation schedules an
//! engine event at [`next_deadline`](TimerWheel::next_deadline) and calls
//! [`pop_due`](TimerWheel::pop_due) when it fires.
//! [`tick_needed`](TimerWheel::tick_needed) deduplicates those wake-ups so
//! a run schedules at most one pending tick event at a time instead of one
//! per armed timer.
//!
//! Expiry order is deterministic: due keys come back ordered by
//! `(deadline, arm order)`, independent of hash-map iteration order.

use std::cmp::Ordering;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

/// One heap entry: a deadline plus the identity of the arming call.
#[derive(Debug, Clone)]
struct HeapEntry<K> {
    deadline: f64,
    seq: u64,
    generation: u64,
    key: K,
}

impl<K> PartialEq for HeapEntry<K> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<K> Eq for HeapEntry<K> {}

impl<K> PartialOrd for HeapEntry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K> Ord for HeapEntry<K> {
    /// Reversed so the `BinaryHeap` max-heap pops the *earliest* deadline;
    /// ties break by arm order (earlier arms pop first).
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .deadline
            .total_cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable one-deadline-per-key timer set.
///
/// ```rust
/// use anycast_sim::TimerWheel;
///
/// let mut wheel: TimerWheel<u32> = TimerWheel::new();
/// wheel.arm(7, 10.0);
/// wheel.arm(8, 5.0);
/// wheel.cancel(&7);
/// assert_eq!(wheel.next_deadline(), Some(5.0));
/// assert_eq!(wheel.pop_due(6.0), vec![8]);
/// assert!(wheel.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TimerWheel<K> {
    heap: BinaryHeap<HeapEntry<K>>,
    /// Live deadline per key: `(generation, deadline)`. Heap entries whose
    /// generation disagrees are stale and skipped.
    live: HashMap<K, (u64, f64)>,
    next_seq: u64,
    /// Earliest tick already promised to the caller by
    /// [`tick_needed`](Self::tick_needed) and not yet consumed.
    promised_tick: Option<f64>,
}

impl<K> Default for TimerWheel<K> {
    fn default() -> Self {
        TimerWheel {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            next_seq: 0,
            promised_tick: None,
        }
    }
}

impl<K: Clone + Eq + Hash> TimerWheel<K> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms (or re-arms) the timer for `key` at `deadline`. A previous
    /// deadline for the same key is superseded.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is not finite.
    pub fn arm(&mut self, key: K, deadline: f64) {
        assert!(deadline.is_finite(), "timer deadline must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(key.clone(), (seq, deadline));
        self.heap.push(HeapEntry {
            deadline,
            seq,
            generation: seq,
            key,
        });
    }

    /// Cancels the pending timer for `key`, if any. Returns the deadline
    /// it was armed for.
    pub fn cancel(&mut self, key: &K) -> Option<f64> {
        self.live.remove(key).map(|(_, d)| d)
    }

    /// The deadline `key` is currently armed for, if any.
    pub fn deadline(&self, key: &K) -> Option<f64> {
        self.live.get(key).map(|&(_, d)| d)
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Earliest armed deadline, if any. Drops stale heap entries as a side
    /// effect, so repeated calls stay cheap.
    pub fn next_deadline(&mut self) -> Option<f64> {
        while let Some(top) = self.heap.peek() {
            match self.live.get(&top.key) {
                Some(&(generation, _)) if generation == top.generation => {
                    return Some(top.deadline);
                }
                _ => {
                    self.heap.pop();
                }
            }
        }
        None
    }

    /// Pops every key whose deadline is `<= now`, in `(deadline, arm
    /// order)` order. Popped keys are disarmed.
    pub fn pop_due(&mut self, now: f64) -> Vec<K> {
        if let Some(p) = self.promised_tick {
            if p <= now {
                self.promised_tick = None;
            }
        }
        let mut due = Vec::new();
        while let Some(top) = self.heap.peek() {
            if top.deadline > now {
                break;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            if let MapEntry::Occupied(live) = self.live.entry(entry.key.clone()) {
                if live.get().0 == entry.generation {
                    live.remove();
                    due.push(entry.key);
                }
            }
        }
        due
    }

    /// Returns `Some(deadline)` when the caller should schedule a wake-up
    /// event at that time — i.e. when the earliest armed deadline precedes
    /// every wake-up already promised. Returns `None` when a sufficient
    /// tick is already scheduled (or nothing is armed), so a run keeps at
    /// most one outstanding tick event instead of one per armed timer.
    ///
    /// A promised tick is consumed by the [`pop_due`](Self::pop_due) call
    /// at (or after) its time.
    pub fn tick_needed(&mut self) -> Option<f64> {
        let next = self.next_deadline()?;
        match self.promised_tick {
            Some(promised) if promised <= next => None,
            _ => {
                self.promised_tick = Some(next);
                Some(next)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_then_arm_order() {
        let mut w: TimerWheel<&str> = TimerWheel::new();
        w.arm("b", 2.0);
        w.arm("a", 1.0);
        w.arm("c", 2.0);
        assert_eq!(w.next_deadline(), Some(1.0));
        assert_eq!(w.pop_due(2.0), vec!["a", "b", "c"]);
        assert!(w.is_empty());
        assert_eq!(w.pop_due(100.0), Vec::<&str>::new());
    }

    #[test]
    fn cancel_and_rearm_supersede_old_entries() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.arm(1, 5.0);
        w.arm(2, 6.0);
        assert_eq!(w.cancel(&1), Some(5.0));
        assert_eq!(w.cancel(&1), None);
        w.arm(2, 20.0); // re-arm pushes the deadline out
        assert_eq!(w.len(), 1);
        assert_eq!(w.deadline(&2), Some(20.0));
        assert_eq!(w.pop_due(10.0), Vec::<u32>::new());
        assert_eq!(w.pop_due(20.0), vec![2]);
    }

    #[test]
    fn rearm_earlier_fires_earlier() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.arm(1, 50.0);
        w.arm(1, 3.0);
        assert_eq!(w.next_deadline(), Some(3.0));
        assert_eq!(w.pop_due(3.0), vec![1]);
        // The stale 50.0 entry must not resurrect the key.
        assert_eq!(w.pop_due(60.0), Vec::<u32>::new());
    }

    #[test]
    fn tick_needed_promises_each_improvement_once() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        assert_eq!(w.tick_needed(), None);
        w.arm(1, 10.0);
        assert_eq!(w.tick_needed(), Some(10.0));
        assert_eq!(w.tick_needed(), None, "tick already promised");
        w.arm(2, 12.0);
        assert_eq!(w.tick_needed(), None, "10.0 tick still covers us");
        w.arm(3, 4.0);
        assert_eq!(w.tick_needed(), Some(4.0), "earlier deadline needs a tick");
        // The 4.0 tick fires: its pop consumes the promise.
        assert_eq!(w.pop_due(4.0), vec![3]);
        assert_eq!(w.tick_needed(), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_deadline_rejected() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.arm(1, f64::INFINITY);
    }
}
