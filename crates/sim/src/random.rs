//! Seeded random sampling for the simulation.

use crate::Duration;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The simulation's random source: a seeded PRNG with the samplers the
/// experiments need.
///
/// Every experiment takes an explicit seed, so runs are exactly
/// reproducible; sweeps vary the seed to obtain independent replications.
///
/// ```rust
/// use anycast_sim::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each
    /// subcomponent (arrivals, holding times, selection) its own stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.rng.gen())
    }

    /// Derives the seed of the `index`-th replication substream of a
    /// master seed.
    ///
    /// A SplitMix64-style finalizer over `master + (index+1)·γ` (γ the
    /// golden-ratio gamma of Steele et al., *Fast Splittable Pseudorandom
    /// Number Generators*): consecutive indices land in well-separated
    /// generator states, so every `(sweep point, replication)` job can be
    /// handed an independent stream whose identity is a pure function of
    /// `(master, index)` — never of which worker thread happens to run
    /// it. This is what makes parallel sweeps bit-identical to serial
    /// ones.
    pub fn substream_seed(master: u64, index: u64) -> u64 {
        const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut z = master.wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A generator positioned on the `index`-th replication substream of
    /// `master`; shorthand for seeding from [`substream_seed`]
    /// (SimRng::substream_seed).
    pub fn substream(master: u64, index: u64) -> SimRng {
        SimRng::seed_from(SimRng::substream_seed(master, index))
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.rng.gen_range(0..n)
    }

    /// An exponentially distributed duration with the given mean — flow
    /// lifetimes in §5.1 are `Exp(mean = 180 s)`.
    ///
    /// # Panics
    ///
    /// Panics if `mean_secs` is not positive and finite.
    pub fn exp_duration(&mut self, mean_secs: f64) -> Duration {
        Duration::from_secs(self.exp(mean_secs))
    }

    /// An exponentially distributed value with the given mean, via
    /// inversion: `-mean · ln(1 - U)`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive and finite, got {mean}"
        );
        let u: f64 = self.rng.gen(); // in [0, 1)
        -mean * (1.0 - u).ln()
    }

    /// Samples an index from a categorical distribution given by
    /// non-negative `weights`. Weights need not be normalised.
    ///
    /// Returns `None` when all weights are zero (or the slice is empty) —
    /// in the admission-control setting this means "no viable destination".
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(
                    w.is_finite() && w >= 0.0,
                    "weights must be finite and non-negative, got {w}"
                );
                w
            })
            .sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// Samples an index from `weights` restricted to positions where
    /// `eligible` is `true` — the without-replacement re-trial draw of §4.5
    /// (already-tried destinations are masked out and the remaining weights
    /// renormalise implicitly).
    ///
    /// Returns `None` when no eligible position has positive weight.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths, or on invalid weights.
    pub fn choose_weighted_masked(&mut self, weights: &[f64], eligible: &[bool]) -> Option<usize> {
        assert_eq!(
            weights.len(),
            eligible.len(),
            "weights and eligibility mask must have equal length"
        );
        let masked: Vec<f64> = weights
            .iter()
            .zip(eligible)
            .map(|(&w, &e)| if e { w } else { 0.0 })
            .collect();
        self.choose_weighted(&masked)
    }

    /// A raw 64-bit sample (used for deriving sub-seeds).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_forking() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        // Fork and parent produce different streams.
        assert_ne!(a.next_u64(), fa.next_u64());
    }

    #[test]
    fn substreams_are_deterministic_and_distinct() {
        // Pure function of (master, index)...
        assert_eq!(SimRng::substream_seed(42, 3), SimRng::substream_seed(42, 3));
        // ...distinct across indices and masters...
        let seeds: Vec<u64> = (0..64).map(|i| SimRng::substream_seed(7, i)).collect();
        let unique: std::collections::BTreeSet<u64> = seeds.iter().copied().collect();
        assert_eq!(
            unique.len(),
            seeds.len(),
            "substream seeds must not collide"
        );
        assert_ne!(SimRng::substream_seed(1, 0), SimRng::substream_seed(2, 0));
        // ...and substream() is exactly seed_from(substream_seed()).
        let mut a = SimRng::substream(7, 5);
        let mut b = SimRng::seed_from(SimRng::substream_seed(7, 5));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::seed_from(42);
        let n = 200_000;
        let mean = 180.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < mean * 0.02,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_memoryless_shape() {
        // P(X > mean) should be about e^-1.
        let mut rng = SimRng::seed_from(43);
        let n = 100_000;
        let above = (0..n).filter(|_| rng.exp(1.0) > 1.0).count();
        let p = above as f64 / n as f64;
        assert!((p - (-1.0f64).exp()).abs() < 0.01, "P(X>mean) = {p}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = SimRng::seed_from(44);
        let weights = [0.1, 0.0, 0.6, 0.3];
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.choose_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight index must never be chosen");
        for (i, &w) in weights.iter().enumerate() {
            let p = counts[i] as f64 / n as f64;
            assert!((p - w).abs() < 0.01, "index {i}: p={p}, w={w}");
        }
    }

    #[test]
    fn weighted_choice_all_zero_is_none() {
        let mut rng = SimRng::seed_from(45);
        assert_eq!(rng.choose_weighted(&[0.0, 0.0]), None);
        assert_eq!(rng.choose_weighted(&[]), None);
    }

    #[test]
    fn masked_choice_skips_ineligible() {
        let mut rng = SimRng::seed_from(46);
        let weights = [0.5, 0.5, 0.0];
        for _ in 0..1_000 {
            let pick = rng
                .choose_weighted_masked(&weights, &[false, true, true])
                .unwrap();
            assert_eq!(pick, 1);
        }
        assert_eq!(
            rng.choose_weighted_masked(&weights, &[false, false, true]),
            None
        );
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = SimRng::seed_from(47);
        for _ in 0..1_000 {
            assert!(rng.below(9) < 9);
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn exp_rejects_zero_mean() {
        let mut rng = SimRng::seed_from(48);
        let _ = rng.exp(0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn weighted_rejects_negative() {
        let mut rng = SimRng::seed_from(49);
        let _ = rng.choose_weighted(&[0.5, -0.1]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn masked_rejects_length_mismatch() {
        let mut rng = SimRng::seed_from(50);
        let _ = rng.choose_weighted_masked(&[0.5], &[true, false]);
    }
}
