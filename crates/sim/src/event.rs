//! The time-ordered event queue.

use crate::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A future-event list: events pop in nondecreasing time order, with FIFO
/// order among events scheduled for the same instant.
///
/// ```rust
/// use anycast_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// q.push(SimTime::from_secs(1.0), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at the given instant.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.push(SimTime::from_secs(t), t as u32);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::from_secs(7.0), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(2.0), ());
        q.push(SimTime::from_secs(1.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
    }
}
