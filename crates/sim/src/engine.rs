//! The discrete-event driver loop.

use crate::{Duration, EventQueue, SimTime};

/// A discrete-event simulation engine: a clock plus a future-event list.
///
/// The engine is deliberately minimal — the event type `E` and all model
/// state belong to the caller, which keeps the engine reusable across the
/// DAC experiments, the RSVP substrate tests and the examples. Handlers
/// receive `&mut Engine` so they can schedule follow-up events.
///
/// Time never runs backwards: scheduling an event before the current clock
/// is a logic error and panics.
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at zero and no pending events.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Timestamp of the earliest pending event, if any.
    ///
    /// Handlers can use this to decide whether more work lands in the
    /// current quantum before yielding control back to the driver loop
    /// (e.g. draining a batch of simultaneous arrivals).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` at `base + delay`.
    ///
    /// Passing the handler's `now` argument as `base` is the common case.
    ///
    /// # Panics
    ///
    /// Panics if `base + delay` is earlier than the current clock.
    pub fn schedule_in(&mut self, base: SimTime, delay: Duration, event: E) {
        self.schedule_at(base + delay, event);
    }

    /// Runs until the event queue drains, calling `handler` for each event.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Engine<E>, SimTime, E),
    {
        while self.step(&mut handler) {}
    }

    /// Runs until the queue drains or the clock passes `horizon`.
    ///
    /// Events scheduled strictly after `horizon` remain queued; the clock
    /// stops at the last processed event (never beyond `horizon`).
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F)
    where
        F: FnMut(&mut Engine<E>, SimTime, E),
    {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step(&mut handler);
        }
    }

    /// Processes one event; returns `false` when the queue was empty.
    pub fn step<F>(&mut self, handler: &mut F) -> bool
    where
        F: FnMut(&mut Engine<E>, SimTime, E),
    {
        match self.queue.pop() {
            Some((t, ev)) => {
                debug_assert!(t >= self.now, "event queue violated time order");
                self.now = t;
                self.processed += 1;
                handler(self, t, ev);
                true
            }
            None => false,
        }
    }

    /// Discards all pending events (the clock is left where it is).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Stop,
    }

    #[test]
    fn drains_queue_in_order() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(3.0), Ev::Tick(3));
        engine.schedule_at(SimTime::from_secs(1.0), Ev::Tick(1));
        engine.schedule_at(SimTime::from_secs(2.0), Ev::Tick(2));
        let mut seen = Vec::new();
        engine.run(|_, t, ev| {
            if let Ev::Tick(n) = ev {
                seen.push((t.as_secs() as u32, n));
            }
        });
        assert_eq!(seen, vec![(1, 1), (2, 2), (3, 3)]);
        assert_eq!(engine.processed(), 3);
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn handlers_can_schedule() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, Ev::Tick(0));
        let mut count = 0u32;
        engine.run(|eng, now, ev| {
            if let Ev::Tick(n) = ev {
                count += 1;
                if n < 4 {
                    eng.schedule_in(now, Duration::from_secs(1.0), Ev::Tick(n + 1));
                }
            }
        });
        assert_eq!(count, 5);
        assert_eq!(engine.now(), SimTime::from_secs(4.0));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut engine = Engine::new();
        for i in 0..10 {
            engine.schedule_at(SimTime::from_secs(i as f64), Ev::Tick(i));
        }
        let mut count = 0;
        engine.run_until(SimTime::from_secs(4.5), |_, _, _| count += 1);
        assert_eq!(count, 5); // t = 0..=4
        assert_eq!(engine.pending(), 5);
        assert_eq!(engine.now(), SimTime::from_secs(4.0));
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(2.0), Ev::Stop);
        let mut hit = false;
        engine.run_until(SimTime::from_secs(2.0), |_, _, ev| hit = ev == Ev::Stop);
        assert!(hit);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(5.0), Ev::Stop);
        engine.run(|eng, _, _| {
            eng.schedule_at(SimTime::from_secs(1.0), Ev::Stop);
        });
    }

    #[test]
    fn peek_time_tracks_head_without_popping() {
        let mut engine: Engine<Ev> = Engine::new();
        assert_eq!(engine.peek_time(), None);
        engine.schedule_at(SimTime::from_secs(2.0), Ev::Tick(2));
        engine.schedule_at(SimTime::from_secs(1.0), Ev::Tick(1));
        assert_eq!(engine.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(engine.pending(), 2);
        engine.run(|eng, now, _| {
            if now == SimTime::from_secs(1.0) {
                assert_eq!(eng.peek_time(), Some(SimTime::from_secs(2.0)));
            } else {
                assert_eq!(eng.peek_time(), None);
            }
        });
    }

    #[test]
    fn clear_discards_pending() {
        let mut engine: Engine<Ev> = Engine::default();
        engine.schedule_at(SimTime::from_secs(1.0), Ev::Stop);
        engine.clear();
        assert_eq!(engine.pending(), 0);
        let mut fired = false;
        engine.run(|_, _, _| fired = true);
        assert!(!fired);
    }
}
