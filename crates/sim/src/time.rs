//! Simulated time: instants and durations in seconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in seconds since simulation start.
///
/// `SimTime` is totally ordered and always finite and non-negative; the
/// constructors enforce this so the event queue never sees NaN.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch, t = 0.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant at `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or infinite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Seconds since the simulation epoch.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The interval from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_secs(self.0 - earlier.0)
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub for SimTime {
    type Output = Duration;
    fn sub(self, other: SimTime) -> Duration {
        Duration::from_secs(self.0 - other.0)
    }
}

/// A span of simulated time in seconds; always finite and non-negative.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Duration(f64);

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a duration of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or infinite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "Duration must be finite and non-negative, got {secs}"
        );
        Duration(secs)
    }

    /// Length in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `true` if this duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for Duration {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Duration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, other: Duration) {
        self.0 += other.0;
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0) + Duration::from_secs(5.0);
        assert_eq!(t, SimTime::from_secs(15.0));
        assert_eq!(t - SimTime::from_secs(10.0), Duration::from_secs(5.0));
        assert_eq!(t.since(SimTime::ZERO).as_secs(), 15.0);
        let mut u = SimTime::ZERO;
        u += Duration::from_secs(2.5);
        assert_eq!(u.as_secs(), 2.5);
        let mut d = Duration::from_secs(1.0);
        d += Duration::from_secs(0.5);
        assert_eq!(d, Duration::from_secs(1.5));
        assert!(Duration::ZERO.is_zero());
        assert!(!d.is_zero());
    }

    #[test]
    fn ordering_is_total() {
        assert!(SimTime::from_secs(1.0) < SimTime::from_secs(2.0));
        assert!(Duration::from_secs(0.1) < Duration::from_secs(0.2));
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::ZERO,
            SimTime::from_secs(1.0),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_duration_rejected() {
        let _ = Duration::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn backwards_since_rejected() {
        let _ = SimTime::ZERO.since(SimTime::from_secs(1.0));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500000s");
        assert_eq!(Duration::from_secs(0.25).to_string(), "0.250000s");
    }
}
