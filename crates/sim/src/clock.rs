//! Wall-clock vs virtual-clock time sources for online (long-lived)
//! simulation driving.
//!
//! The discrete-event [`Engine`](crate::Engine) keeps its own virtual
//! clock; a [`TimeSource`] tells a *driver loop* how far that clock is
//! allowed to advance and how to wait for the next quantum:
//!
//! * [`VirtualClock`] — time is wherever the driver says it is and
//!   "waiting" is free. Trace replay in virtual-time mode uses this, which
//!   is why a replay finishes in milliseconds yet remains bit-identical to
//!   the offline engine.
//! * [`WallClock`] — simulated seconds are anchored to a real
//!   [`Instant`], optionally rate-scaled (`speed` simulated seconds per
//!   real second), and waiting actually sleeps. The admission daemon and
//!   paced (`--speed`) replay use this.

use crate::SimTime;
use std::time::{Duration as StdDuration, Instant};

/// A monotonic source of simulated time for a driver loop.
pub trait TimeSource {
    /// The current simulated time according to this source.
    fn now(&mut self) -> SimTime;

    /// Blocks (or, for virtual sources, instantly advances) until the
    /// source reaches `t`. Returns the source's time afterwards, which is
    /// `>= t`.
    fn sleep_until(&mut self, t: SimTime) -> SimTime;
}

/// A virtual clock: advancing is free and instantaneous.
///
/// `now` only moves forward via [`sleep_until`](TimeSource::sleep_until)
/// (or [`advance_to`](VirtualClock::advance_to)), so a replay driver that
/// sleeps to each arrival timestamp visits exactly the same instants a
/// wall-clock driver would, with zero real-time cost.
#[derive(Debug, Clone, Copy)]
pub struct VirtualClock {
    now: SimTime,
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualClock {
    /// A virtual clock starting at simulated time zero.
    pub fn new() -> Self {
        VirtualClock { now: SimTime::ZERO }
    }

    /// Moves the clock to `t` if that is later than the current time.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

impl TimeSource for VirtualClock {
    fn now(&mut self) -> SimTime {
        self.now
    }

    fn sleep_until(&mut self, t: SimTime) -> SimTime {
        self.advance_to(t);
        self.now
    }
}

/// A wall clock mapping real elapsed time to simulated seconds at a
/// configurable rate.
///
/// `speed` is simulated seconds per real second: 1.0 runs in real time,
/// 60.0 replays an hour-long trace in a minute. The origin is captured at
/// construction, so simulated time `t` corresponds to the real instant
/// `origin + t / speed`.
///
/// Pacing is **absolute-deadline anchored**: every sleep targets
/// `origin + t / speed` rather than a duration relative to the previous
/// wake-up, so per-sleep overheads (scheduler latency, timer coarseness)
/// never accumulate across a long replay — a driver issuing thousands of
/// `sleep_until` calls lands on the final deadline with bounded error,
/// not the sum of each call's overshoot.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
    speed: f64,
}

impl WallClock {
    /// A wall clock starting now, mapping `speed` simulated seconds to
    /// each real second.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not positive and finite.
    pub fn new(speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "wall-clock speed must be positive and finite, got {speed}"
        );
        WallClock {
            origin: Instant::now(),
            speed,
        }
    }

    /// The rate-scaling factor (simulated seconds per real second).
    pub fn speed(&self) -> f64 {
        self.speed
    }
}

impl TimeSource for WallClock {
    fn now(&mut self) -> SimTime {
        SimTime::from_secs(self.origin.elapsed().as_secs_f64() * self.speed)
    }

    fn sleep_until(&mut self, t: SimTime) -> SimTime {
        loop {
            let now = self.now();
            if now >= t {
                return now;
            }
            let remaining_real = (t.as_secs() - now.as_secs()) / self.speed;
            std::thread::sleep(StdDuration::from_secs_f64(remaining_real.max(0.0)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_for_free() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        let t = SimTime::from_secs(1_000_000.0);
        let started = Instant::now();
        assert_eq!(c.sleep_until(t), t);
        assert_eq!(c.now(), t);
        assert!(started.elapsed() < StdDuration::from_secs(1));
        // Sleeping backwards is a no-op.
        assert_eq!(c.sleep_until(SimTime::from_secs(1.0)), t);
    }

    #[test]
    fn wall_clock_scales_real_time() {
        // 1000 simulated seconds per real second: 50ms of real time must
        // cover the 20-simulated-second sleep with huge margin.
        let mut c = WallClock::new(1_000.0);
        let reached = c.sleep_until(SimTime::from_secs(20.0));
        assert!(reached >= SimTime::from_secs(20.0));
        assert!(c.now() >= reached);
        assert_eq!(c.speed(), 1_000.0);
    }

    #[test]
    fn paced_sleeps_do_not_accumulate_drift() {
        // A --speed replay issues one sleep_until per arrival. Because
        // each sleep targets the absolute deadline `origin + t/speed`,
        // per-call overshoot must NOT accumulate: many short sleeps land
        // on the final deadline with the same bounded error as one long
        // sleep. 2000 sleeps covering 100 simulated seconds at 100000x
        // is 1 ms of nominal real time; even a slow CI runner stays far
        // under the 1 s slack unless overheads compound per call.
        let speed = 100_000.0;
        let mut c = WallClock::new(speed);
        let started = Instant::now();
        let steps = 2_000;
        let final_secs = 100.0;
        for i in 1..=steps {
            let target = SimTime::from_secs(final_secs * i as f64 / steps as f64);
            let reached = c.sleep_until(target);
            assert!(reached >= target, "woke before the deadline at step {i}");
        }
        let elapsed = started.elapsed().as_secs_f64();
        let nominal = final_secs / speed;
        assert!(
            elapsed < nominal + 1.0,
            "cumulative pacing drift: {elapsed:.3}s real for {nominal:.3}s nominal"
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_speed_rejected() {
        let _ = WallClock::new(0.0);
    }
}
