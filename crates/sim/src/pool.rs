//! A minimal scoped-thread worker pool for deterministic fan-out.
//!
//! No work queue, no channels: jobs are an indexed slice, workers claim
//! indices from a shared atomic cursor, and every result is keyed by the
//! index it came from. Because each job is a pure function of its input
//! (experiment runs take explicit seeds), the reassembled output vector is
//! **identical for any worker count** — `--jobs 8` produces the same bytes
//! as `--jobs 1`, which the sweep layer and CI rely on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the machine's available parallelism, or 1
/// when it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every element of `items` using `jobs` worker threads and
/// returns the results **in input order**.
///
/// `f` receives `(index, &item)` and must be a pure function of them for
/// the output to be independent of scheduling — which it then is, exactly:
/// the result vector is bit-for-bit the same for every `jobs` value.
///
/// `jobs == 1` (or a single item) runs inline on the calling thread with
/// no synchronisation at all, so the serial path really is serial.
///
/// Work is distributed by atomic-cursor stealing rather than pre-chunking,
/// so a few expensive items (high-λ sweep points) cannot serialise the
/// batch behind one unlucky worker.
///
/// # Panics
///
/// Panics if `jobs == 0`, or if `f` panics on any item (the panic is
/// propagated once all workers have stopped).
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(jobs, items, || (), |(), i, t| f(i, t))
}

/// [`parallel_map`] with per-worker scratch state: `init` runs once on
/// each worker thread (and once inline on the serial path) and the value
/// it builds is threaded mutably through every item that worker claims.
///
/// This is the fan-out shape for evaluation over a borrowed snapshot:
/// workers share read-only borrows (`T: Sync`, captured references) while
/// each reuses its own allocation-heavy scratch (e.g. a routing
/// workspace) across items, without any cross-thread synchronisation on
/// the scratch itself.
///
/// `f` must be a pure function of `(index, &item)` — the scratch is a
/// reusable buffer, never a carrier of state between items — and the
/// output vector is then bit-for-bit identical for every `jobs` value.
///
/// # Panics
///
/// Panics if `jobs == 0`, or if `init` or `f` panics (propagated once all
/// workers have stopped).
pub fn parallel_map_with<T, R, S, I, F>(jobs: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    assert!(jobs > 0, "worker pool needs at least one job slot");
    if jobs == 1 || items.len() <= 1 {
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
    }
    let workers = jobs.min(items.len());
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else {
                        break;
                    };
                    let r = f(&mut scratch, i, item);
                    results
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .push((i, r));
                }
            });
        }
    });
    let mut collected = results
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    debug_assert_eq!(collected.len(), items.len(), "every job produces a result");
    collected.sort_unstable_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let serial = parallel_map(1, &items, |i, &x| (i as u64) * 1_000 + x * x);
        for jobs in [2, 3, 8, 64] {
            let par = parallel_map(jobs, &items, |i, &x| (i as u64) * 1_000 + x * x);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = parallel_map(4, &[], |_, &x: &u32| x);
        assert!(none.is_empty());
        assert_eq!(parallel_map(4, &[9], |i, &x| x + i as u32), vec![9]);
    }

    #[test]
    fn scratch_is_reused_within_a_worker_but_never_leaks_between_items() {
        // The scratch buffer grows across items; results depend only on
        // (index, item), so any claiming order yields the same vector.
        let items: Vec<usize> = (0..50).collect();
        let run = |jobs| {
            parallel_map_with(jobs, &items, Vec::<u8>::new, |scratch, i, &x| {
                scratch.resize(x + 1, 0);
                i * 100 + scratch.len() - 1
            })
        };
        let serial = run(1);
        assert_eq!(serial, (0..50).map(|i| i * 101).collect::<Vec<_>>());
        for jobs in [2, 5, 16] {
            assert_eq!(run(jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one job slot")]
    fn zero_jobs_rejected() {
        let _ = parallel_map(0, &[1, 2, 3], |_, &x| x);
    }
}
