//! Property-based tests for the simulation substrate.

use anycast_sim::stats::MeanVar;
use anycast_sim::{Duration, Engine, EventQueue, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in nondecreasing time order regardless of
    /// insertion order.
    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(0.0f64..1e6, 0..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(*t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Same-timestamp events preserve insertion order (FIFO).
    #[test]
    fn queue_fifo_at_equal_times(
        n in 1usize..100,
        t in 0.0f64..100.0,
    ) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_secs(t), i);
        }
        let drained: Vec<usize> =
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(drained, (0..n).collect::<Vec<_>>());
    }

    /// The engine clock is nondecreasing and processes every event exactly
    /// once.
    #[test]
    fn engine_clock_monotone(times in prop::collection::vec(0.0f64..1e4, 1..100)) {
        let mut engine = Engine::new();
        for (i, t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_secs(*t), i);
        }
        let mut seen = vec![false; times.len()];
        let mut last = SimTime::ZERO;
        engine.run(|_, now, ev| {
            assert!(now >= last);
            last = now;
            assert!(!seen[ev], "event delivered twice");
            seen[ev] = true;
        });
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(engine.processed(), times.len() as u64);
    }

    /// Exponential samples are always positive and deterministic per seed.
    #[test]
    fn exp_positive_and_deterministic(seed in any::<u64>(), mean in 0.001f64..1e4) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..50 {
            let xa = a.exp(mean);
            prop_assert!(xa >= 0.0 && xa.is_finite());
            prop_assert_eq!(xa, b.exp(mean));
        }
    }

    /// Weighted choice only ever returns indices with positive weight.
    #[test]
    fn weighted_choice_in_support(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..20),
    ) {
        let mut rng = SimRng::seed_from(seed);
        match rng.choose_weighted(&weights) {
            Some(i) => prop_assert!(weights[i] > 0.0),
            None => prop_assert!(weights.iter().all(|&w| w == 0.0)),
        }
    }

    /// Masked weighted choice never picks a masked-out index.
    #[test]
    fn masked_choice_respects_mask(
        seed in any::<u64>(),
        pairs in prop::collection::vec((0.0f64..10.0, any::<bool>()), 1..20),
    ) {
        let mut rng = SimRng::seed_from(seed);
        let weights: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let mask: Vec<bool> = pairs.iter().map(|p| p.1).collect();
        if let Some(i) = rng.choose_weighted_masked(&weights, &mask) {
            prop_assert!(mask[i] && weights[i] > 0.0);
        }
    }

    /// Welford moments match the naive two-pass computation.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut m = MeanVar::new();
        for &x in &xs {
            m.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((m.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((m.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
    }

    /// Engine `run_until` never advances the clock beyond the horizon.
    #[test]
    fn run_until_respects_horizon(
        times in prop::collection::vec(0.0f64..100.0, 1..50),
        horizon in 0.0f64..100.0,
    ) {
        let mut engine = Engine::new();
        for (i, t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_secs(*t), i);
        }
        let h = SimTime::from_secs(horizon);
        engine.run_until(h, |_, _, _| {});
        prop_assert!(engine.now() <= h);
        let expected = times.iter().filter(|&&t| SimTime::from_secs(t) <= h).count();
        prop_assert_eq!(engine.processed(), expected as u64);
    }
}

#[test]
fn engine_follow_up_events_interleave() {
    // A chain scheduled from handlers interleaves correctly with
    // pre-scheduled events.
    let mut engine = Engine::new();
    engine.schedule_at(SimTime::from_secs(0.0), "chain");
    engine.schedule_at(SimTime::from_secs(2.5), "static");
    let mut log = Vec::new();
    engine.run(|eng, now, ev| {
        log.push((now.as_secs(), ev));
        if ev == "chain" && now < SimTime::from_secs(4.0) {
            eng.schedule_in(now, Duration::from_secs(1.0), "chain");
        }
    });
    let evs: Vec<&str> = log.iter().map(|(_, e)| *e).collect();
    assert_eq!(
        evs,
        vec!["chain", "chain", "chain", "static", "chain", "chain"]
    );
}
