//! Textual fault-plan specifications — a hand-rolled subset of TOML so
//! the CLI's `--faults plan.toml` needs no external parser.
//!
//! Supported grammar (one statement per line, `#` comments):
//!
//! ```toml
//! [links]                       # stochastic link up/down model
//! mtbf_secs = 900.0
//! mttr_secs = 120.0
//!
//! [members]                     # stochastic member crash model
//! mtbf_secs = 3000.0
//! mttr_secs = 300.0
//!
//! [control]                     # RSVP control-plane faults
//! teardown_loss_probability = 0.05
//! teardown_delay_secs = 0.5
//!
//! [signaling]                   # two-phase setup message faults
//! path_loss_probability = 0.02  # per hop crossing
//! resv_loss_probability = 0.02
//! resv_err_loss_probability = 0.02
//! extra_delay_secs = 0.05       # exp. mean, applied to every kind
//!
//! [refresh]                     # soft-state lifecycle
//! interval_secs = 30.0
//! missed_limit = 3
//!
//! [[script]]                    # explicit timeline entries
//! at_secs = 100.0
//! action = "fail_link"          # fail_link | restore_link |
//! id = 7                        #   crash_node | restore_node
//! ```

use crate::plan::{ControlFaultModel, FaultAction, FaultPlan, ScriptedFault, SignalingFaults};
use anycast_net::{LinkId, NodeId};
use anycast_rsvp::RefreshConfig;

/// Which `[section]` the parser is inside.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Section {
    Top,
    Links,
    Members,
    Control,
    Signaling,
    Refresh,
    Script,
}

/// One partially parsed `[[script]]` table.
#[derive(Debug, Default, Clone)]
struct ScriptEntry {
    at_secs: Option<f64>,
    action: Option<String>,
    id: Option<u32>,
    line: usize,
}

impl ScriptEntry {
    fn finish(self) -> Result<ScriptedFault, String> {
        let at_secs = self
            .at_secs
            .ok_or_else(|| format!("line {}: [[script]] entry missing `at_secs`", self.line))?;
        if !at_secs.is_finite() || at_secs < 0.0 {
            return Err(format!(
                "line {}: `at_secs` must be non-negative, got {at_secs}",
                self.line
            ));
        }
        let action = self
            .action
            .ok_or_else(|| format!("line {}: [[script]] entry missing `action`", self.line))?;
        let id = self
            .id
            .ok_or_else(|| format!("line {}: [[script]] entry missing `id`", self.line))?;
        let action = match action.as_str() {
            "fail_link" => FaultAction::FailLink(LinkId::new(id)),
            "restore_link" => FaultAction::RestoreLink(LinkId::new(id)),
            "crash_node" | "crash_member" => FaultAction::CrashNode(NodeId::new(id)),
            "restore_node" | "restore_member" => FaultAction::RestoreNode(NodeId::new(id)),
            other => {
                return Err(format!(
                    "line {}: unknown action `{other}` (expected fail_link, restore_link, \
                     crash_node/crash_member or restore_node/restore_member)",
                    self.line
                ))
            }
        };
        Ok(ScriptedFault { at_secs, action })
    }
}

/// Accumulates `mtbf_secs`/`mttr_secs` for one stochastic model section.
#[derive(Debug, Default, Clone, Copy)]
struct ModelBuilder {
    mtbf: Option<f64>,
    mttr: Option<f64>,
}

impl ModelBuilder {
    fn is_set(&self) -> bool {
        self.mtbf.is_some() || self.mttr.is_some()
    }

    fn finish(self, section: &str) -> Result<(f64, f64), String> {
        match (self.mtbf, self.mttr) {
            (Some(b), Some(r)) => {
                for (name, v) in [("mtbf_secs", b), ("mttr_secs", r)] {
                    if !v.is_finite() || v <= 0.0 {
                        return Err(format!("[{section}] {name} must be positive, got {v}"));
                    }
                }
                Ok((b, r))
            }
            _ => Err(format!("[{section}] needs both mtbf_secs and mttr_secs")),
        }
    }
}

fn parse_f64(key: &str, value: &str, line: usize) -> Result<f64, String> {
    value
        .parse::<f64>()
        .map_err(|e| format!("line {line}: bad number for `{key}`: {e}"))
}

fn parse_u32(key: &str, value: &str, line: usize) -> Result<u32, String> {
    value
        .parse::<u32>()
        .map_err(|e| format!("line {line}: bad integer for `{key}`: {e}"))
}

/// Parses a fault plan from the TOML subset documented at module level.
///
/// An empty document parses to [`FaultPlan::none`].
///
/// # Errors
///
/// A human-readable message naming the offending line on malformed
/// input, unknown sections or keys, or out-of-range values.
pub fn parse_fault_plan(text: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::none();
    let mut section = Section::Top;
    let mut links = ModelBuilder::default();
    let mut members = ModelBuilder::default();
    let mut refresh = RefreshConfig::rsvp_default();
    let mut control = ControlFaultModel::none();
    let mut signaling = SignalingFaults::none();
    let mut current_script: Option<ScriptEntry> = None;
    let mut scripts: Vec<ScriptEntry> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[script]]" {
            if let Some(entry) = current_script.take() {
                scripts.push(entry);
            }
            current_script = Some(ScriptEntry {
                line: lineno,
                ..ScriptEntry::default()
            });
            section = Section::Script;
            continue;
        }
        if line.starts_with('[') {
            if let Some(entry) = current_script.take() {
                scripts.push(entry);
            }
            section = match line {
                "[links]" => Section::Links,
                "[members]" => Section::Members,
                "[control]" => Section::Control,
                "[signaling]" => Section::Signaling,
                "[refresh]" => Section::Refresh,
                other => {
                    return Err(format!(
                        "line {lineno}: unknown section `{other}` (expected [links], \
                         [members], [control], [signaling], [refresh] or [[script]])"
                    ))
                }
            };
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`, got `{line}`"))?;
        let key = key.trim();
        let value = value.trim().trim_matches('"');
        match section {
            Section::Top => {
                return Err(format!(
                    "line {lineno}: `{key}` outside any section (start with [links], \
                     [members], [control], [signaling], [refresh] or [[script]])"
                ))
            }
            Section::Links | Section::Members => {
                let model = if section == Section::Links {
                    &mut links
                } else {
                    &mut members
                };
                match key {
                    "mtbf_secs" => model.mtbf = Some(parse_f64(key, value, lineno)?),
                    "mttr_secs" => model.mttr = Some(parse_f64(key, value, lineno)?),
                    other => {
                        return Err(format!(
                            "line {lineno}: unknown key `{other}` (expected mtbf_secs or \
                             mttr_secs)"
                        ))
                    }
                }
            }
            Section::Control => match key {
                "teardown_loss_probability" => {
                    let p = parse_f64(key, value, lineno)?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!(
                            "line {lineno}: teardown_loss_probability {p} not in [0, 1]"
                        ));
                    }
                    control.teardown_loss_probability = p;
                }
                "teardown_delay_secs" => {
                    let d = parse_f64(key, value, lineno)?;
                    if !d.is_finite() || d < 0.0 {
                        return Err(format!(
                            "line {lineno}: teardown_delay_secs must be non-negative, got {d}"
                        ));
                    }
                    control.teardown_delay_secs = d;
                }
                other => {
                    return Err(format!(
                        "line {lineno}: unknown key `{other}` (expected \
                         teardown_loss_probability or teardown_delay_secs)"
                    ))
                }
            },
            Section::Signaling => match key {
                "path_loss_probability" | "resv_loss_probability" | "resv_err_loss_probability" => {
                    let p = parse_f64(key, value, lineno)?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("line {lineno}: {key} {p} not in [0, 1]"));
                    }
                    match key {
                        "path_loss_probability" => signaling.path.loss_probability = p,
                        "resv_loss_probability" => signaling.resv.loss_probability = p,
                        _ => signaling.resv_err.loss_probability = p,
                    }
                }
                "extra_delay_secs" => {
                    let d = parse_f64(key, value, lineno)?;
                    if !d.is_finite() || d < 0.0 {
                        return Err(format!(
                            "line {lineno}: extra_delay_secs must be non-negative, got {d}"
                        ));
                    }
                    signaling.path.extra_delay_secs = d;
                    signaling.resv.extra_delay_secs = d;
                    signaling.resv_err.extra_delay_secs = d;
                }
                other => {
                    return Err(format!(
                        "line {lineno}: unknown key `{other}` (expected \
                         path_loss_probability, resv_loss_probability, \
                         resv_err_loss_probability or extra_delay_secs)"
                    ))
                }
            },
            Section::Refresh => match key {
                "interval_secs" => {
                    let i = parse_f64(key, value, lineno)?;
                    if !i.is_finite() || i <= 0.0 {
                        return Err(format!(
                            "line {lineno}: interval_secs must be positive, got {i}"
                        ));
                    }
                    refresh.refresh_interval_secs = i;
                }
                "missed_limit" => {
                    let k = parse_u32(key, value, lineno)?;
                    if k == 0 {
                        return Err(format!("line {lineno}: missed_limit must be at least 1"));
                    }
                    refresh.missed_refresh_limit = k;
                }
                other => {
                    return Err(format!(
                        "line {lineno}: unknown key `{other}` (expected interval_secs or \
                         missed_limit)"
                    ))
                }
            },
            Section::Script => {
                let entry = current_script
                    .as_mut()
                    .expect("Script section implies an open entry");
                match key {
                    "at_secs" => entry.at_secs = Some(parse_f64(key, value, lineno)?),
                    "action" => entry.action = Some(value.to_string()),
                    "id" => entry.id = Some(parse_u32(key, value, lineno)?),
                    other => {
                        return Err(format!(
                            "line {lineno}: unknown key `{other}` (expected at_secs, action \
                             or id)"
                        ))
                    }
                }
            }
        }
    }
    if let Some(entry) = current_script.take() {
        scripts.push(entry);
    }

    if links.is_set() {
        let (mtbf, mttr) = links.finish("links")?;
        plan = plan.with_link_model(mtbf, mttr);
    }
    if members.is_set() {
        let (mtbf, mttr) = members.finish("members")?;
        plan = plan.with_member_model(mtbf, mttr);
    }
    plan.control = control;
    plan.signaling = signaling;
    plan.refresh = refresh;
    for entry in scripts {
        let fault = entry.finish()?;
        plan.script.push(fault);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_document_is_fault_free() {
        let plan = parse_fault_plan("").unwrap();
        assert_eq!(plan, FaultPlan::none());
        let plan = parse_fault_plan("# only a comment\n\n").unwrap();
        assert!(plan.is_inert());
    }

    #[test]
    fn full_document_round_trips() {
        let text = r#"
# a busy afternoon on the backbone
[links]
mtbf_secs = 900.0
mttr_secs = 120.0

[members]
mtbf_secs = 3000.0
mttr_secs = 300.0

[control]
teardown_loss_probability = 0.05
teardown_delay_secs = 0.5

[refresh]
interval_secs = 15.0
missed_limit = 2

[[script]]
at_secs = 100.0
action = "fail_link"
id = 7

[[script]]
at_secs = 400.0
action = "restore_link"
id = 7

[[script]]
at_secs = 250.0
action = "crash_member"
id = 4
"#;
        let plan = parse_fault_plan(text).unwrap();
        let links = plan.link_model.unwrap();
        assert_eq!((links.mtbf_secs, links.mttr_secs), (900.0, 120.0));
        let members = plan.member_model.unwrap();
        assert_eq!((members.mtbf_secs, members.mttr_secs), (3000.0, 300.0));
        assert_eq!(plan.control.teardown_loss_probability, 0.05);
        assert_eq!(plan.control.teardown_delay_secs, 0.5);
        assert_eq!(plan.refresh.refresh_interval_secs, 15.0);
        assert_eq!(plan.refresh.missed_refresh_limit, 2);
        assert_eq!(plan.script.len(), 3);
        assert_eq!(
            plan.script[0],
            ScriptedFault {
                at_secs: 100.0,
                action: FaultAction::FailLink(LinkId::new(7)),
            }
        );
        assert_eq!(
            plan.script[2].action,
            FaultAction::CrashNode(NodeId::new(4))
        );
        assert!(!plan.is_inert());
    }

    #[test]
    fn signaling_section_parses() {
        let text = r#"
[signaling]
path_loss_probability = 0.02
resv_loss_probability = 0.05
resv_err_loss_probability = 0.1
extra_delay_secs = 0.25
"#;
        let plan = parse_fault_plan(text).unwrap();
        assert_eq!(plan.signaling.path.loss_probability, 0.02);
        assert_eq!(plan.signaling.resv.loss_probability, 0.05);
        assert_eq!(plan.signaling.resv_err.loss_probability, 0.1);
        assert_eq!(plan.signaling.path.extra_delay_secs, 0.25);
        assert_eq!(plan.signaling.resv.extra_delay_secs, 0.25);
        assert!(!plan.is_inert());
        assert!(parse_fault_plan("[signaling]\npath_loss_probability = 1.5\n").is_err());
        assert!(parse_fault_plan("[signaling]\nextra_delay_secs = -1\n").is_err());
        assert!(parse_fault_plan("[signaling]\nbogus = 1\n").is_err());
    }

    #[test]
    fn errors_name_the_line() {
        let err = parse_fault_plan("[links]\nmtbf_secs = fast\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_fault_plan("[bogus]\n").unwrap_err();
        assert!(err.contains("unknown section"), "{err}");
        let err = parse_fault_plan("mtbf_secs = 1.0\n").unwrap_err();
        assert!(err.contains("outside any section"), "{err}");
        let err = parse_fault_plan("[links]\nmtbf_secs = 10.0\n").unwrap_err();
        assert!(err.contains("both mtbf_secs and mttr_secs"), "{err}");
        let err = parse_fault_plan("[[script]]\nat_secs = 1.0\naction = \"explode\"\nid = 1\n")
            .unwrap_err();
        assert!(err.contains("unknown action"), "{err}");
        let err = parse_fault_plan("[[script]]\nat_secs = 1.0\nid = 1\n").unwrap_err();
        assert!(err.contains("missing `action`"), "{err}");
        let err = parse_fault_plan("[control]\nteardown_loss_probability = 2.0\n").unwrap_err();
        assert!(err.contains("not in [0, 1]"), "{err}");
    }

    #[test]
    fn out_of_range_values_rejected() {
        assert!(parse_fault_plan("[links]\nmtbf_secs = -5\nmttr_secs = 1\n").is_err());
        assert!(parse_fault_plan("[refresh]\ninterval_secs = 0\n").is_err());
        assert!(parse_fault_plan("[refresh]\nmissed_limit = 0\n").is_err());
        assert!(
            parse_fault_plan("[[script]]\nat_secs = -1\naction = \"fail_link\"\nid = 0\n").is_err()
        );
    }
}
