//! Expanding a [`FaultPlan`] into a concrete, deterministic event
//! sequence for one run.

use crate::plan::{FaultAction, FaultPlan, ScriptedFault, StochasticFaultModel};
use anycast_net::{NodeId, Topology};
use anycast_sim::SimRng;

/// A time-sorted sequence of fault actions, ready to be scheduled on the
/// simulation engine.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTimeline {
    events: Vec<ScriptedFault>,
}

impl FaultTimeline {
    /// The events, sorted by fire time (stable for ties).
    pub fn events(&self) -> &[ScriptedFault] {
        &self.events
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no action will ever fire.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of capacity-removing actions (failures, not repairs).
    pub fn failure_count(&self) -> usize {
        self.events.iter().filter(|e| e.action.is_failure()).count()
    }
}

/// Generates one entity's alternating up/down sample path over
/// `[0, horizon)` and appends it to `out`.
fn sample_entity(
    model: &StochasticFaultModel,
    horizon_secs: f64,
    rng: &mut SimRng,
    fail: impl Fn() -> FaultAction,
    restore: impl Fn() -> FaultAction,
    out: &mut Vec<ScriptedFault>,
) {
    let mut t = rng.exp(model.mtbf_secs);
    while t < horizon_secs {
        out.push(ScriptedFault {
            at_secs: t,
            action: fail(),
        });
        t += rng.exp(model.mttr_secs);
        if t >= horizon_secs {
            break; // the outage outlives the run; no repair to schedule
        }
        out.push(ScriptedFault {
            at_secs: t,
            action: restore(),
        });
        t += rng.exp(model.mtbf_secs);
    }
}

/// Expands `plan` into the concrete timeline of one run.
///
/// Deterministic: the same `(plan, topo, members, horizon, rng state)`
/// always yields the same timeline. Each link and each member gets its
/// own forked RNG stream, consumed in a fixed order (links by id, then
/// members sorted by id), so adding entities or lengthening the horizon
/// never perturbs the sample path of the others. An inert plan consumes
/// no randomness at all.
///
/// Scripted events beyond the horizon are dropped; stochastic events are
/// generated only in `[0, horizon)`.
pub fn build_timeline(
    plan: &FaultPlan,
    topo: &Topology,
    members: &[NodeId],
    horizon_secs: f64,
    rng: &mut SimRng,
) -> FaultTimeline {
    assert!(
        horizon_secs.is_finite() && horizon_secs >= 0.0,
        "horizon must be non-negative, got {horizon_secs}"
    );
    let mut events = Vec::new();
    if let Some(model) = &plan.link_model {
        for link in topo.links() {
            let id = link.id();
            let mut stream = rng.fork();
            sample_entity(
                model,
                horizon_secs,
                &mut stream,
                || FaultAction::FailLink(id),
                || FaultAction::RestoreLink(id),
                &mut events,
            );
        }
    }
    if let Some(model) = &plan.member_model {
        let mut targets: Vec<NodeId> = members.to_vec();
        targets.sort_unstable();
        targets.dedup();
        for node in targets {
            let mut stream = rng.fork();
            sample_entity(
                model,
                horizon_secs,
                &mut stream,
                || FaultAction::CrashNode(node),
                || FaultAction::RestoreNode(node),
                &mut events,
            );
        }
    }
    for s in &plan.script {
        assert!(
            s.at_secs.is_finite() && s.at_secs >= 0.0,
            "scripted fault time {} must be non-negative",
            s.at_secs
        );
        if s.at_secs < horizon_secs {
            events.push(*s);
        }
    }
    events.sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));
    FaultTimeline { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_net::{topologies, LinkId};

    fn members() -> Vec<NodeId> {
        topologies::MCI_GROUP_MEMBERS.map(NodeId::new).to_vec()
    }

    #[test]
    fn inert_plan_yields_empty_timeline_and_consumes_no_rng() {
        let topo = topologies::mci();
        let mut rng = SimRng::seed_from(7);
        let mut snapshot = rng.clone();
        let tl = build_timeline(&FaultPlan::none(), &topo, &members(), 1_000.0, &mut rng);
        assert!(tl.is_empty());
        // The rng was untouched: it still matches its pre-call snapshot.
        assert_eq!(snapshot.next_u64(), rng.next_u64());
    }

    #[test]
    fn same_seed_same_timeline() {
        let topo = topologies::mci();
        let plan = FaultPlan::none()
            .with_link_model(600.0, 60.0)
            .with_member_model(2_000.0, 200.0);
        let tl1 = build_timeline(
            &plan,
            &topo,
            &members(),
            5_000.0,
            &mut SimRng::seed_from(42),
        );
        let tl2 = build_timeline(
            &plan,
            &topo,
            &members(),
            5_000.0,
            &mut SimRng::seed_from(42),
        );
        assert_eq!(tl1, tl2);
        assert!(!tl1.is_empty(), "5000 s at MTBF 600 s must produce faults");
    }

    #[test]
    fn different_seeds_differ() {
        let topo = topologies::mci();
        let plan = FaultPlan::none().with_link_model(600.0, 60.0);
        let tl1 = build_timeline(&plan, &topo, &members(), 5_000.0, &mut SimRng::seed_from(1));
        let tl2 = build_timeline(&plan, &topo, &members(), 5_000.0, &mut SimRng::seed_from(2));
        assert_ne!(tl1, tl2);
    }

    #[test]
    fn timeline_is_sorted_and_alternates_per_entity() {
        let topo = topologies::mci();
        let plan = FaultPlan::none().with_link_model(400.0, 80.0);
        let tl = build_timeline(
            &plan,
            &topo,
            &members(),
            10_000.0,
            &mut SimRng::seed_from(9),
        );
        let events = tl.events();
        for w in events.windows(2) {
            assert!(w[0].at_secs <= w[1].at_secs, "not sorted: {w:?}");
        }
        // Per link: fail, restore, fail, restore, ... in time order.
        for link in topo.links() {
            let mine: Vec<&ScriptedFault> = events
                .iter()
                .filter(|e| {
                    matches!(e.action,
                        FaultAction::FailLink(l) | FaultAction::RestoreLink(l) if l == link.id())
                })
                .collect();
            for (i, e) in mine.iter().enumerate() {
                assert_eq!(
                    e.action.is_failure(),
                    i % 2 == 0,
                    "link {} event {} breaks alternation",
                    link.id(),
                    i
                );
            }
        }
        assert!(tl.failure_count() >= tl.len() / 2);
    }

    #[test]
    fn scripted_events_merge_and_clip_to_horizon() {
        let topo = topologies::mci();
        let plan = FaultPlan::none()
            .with_scripted(50.0, FaultAction::FailLink(LinkId::new(3)))
            .with_scripted(999.0, FaultAction::RestoreLink(LinkId::new(3)))
            .with_scripted(10.0, FaultAction::CrashNode(NodeId::new(4)));
        let tl = build_timeline(&plan, &topo, &members(), 100.0, &mut SimRng::seed_from(0));
        assert_eq!(tl.len(), 2, "the 999 s event lies beyond the horizon");
        assert_eq!(tl.events()[0].at_secs, 10.0);
        assert_eq!(tl.events()[1].at_secs, 50.0);
    }

    #[test]
    fn member_order_does_not_matter() {
        let topo = topologies::mci();
        let plan = FaultPlan::none().with_member_model(1_000.0, 100.0);
        let fwd = members();
        let mut rev = members();
        rev.reverse();
        let tl1 = build_timeline(&plan, &topo, &fwd, 5_000.0, &mut SimRng::seed_from(5));
        let tl2 = build_timeline(&plan, &topo, &rev, 5_000.0, &mut SimRng::seed_from(5));
        assert_eq!(tl1, tl2, "members are sampled in sorted order");
    }
}
