//! Outage accounting: the ledger behind the availability, recovery-time
//! and soft-state metrics.

use anycast_net::{LinkId, NodeId};
use std::collections::HashMap;

/// A thing that can be down: one link or one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultEntity {
    /// A failed link.
    Link(LinkId),
    /// A crashed router.
    Node(NodeId),
}

/// Running ledger of one experiment's fault history.
///
/// The book never looks at the network itself; the experiment loop
/// reports state transitions and the book turns them into durations and
/// counts. Double-failing an already-down entity or restoring a healthy
/// one is ignored, so idempotent scripted plans stay well-defined.
#[derive(Debug, Clone, Default)]
pub struct FaultBook {
    down_since: HashMap<FaultEntity, f64>,
    completed_outages: u64,
    total_repair_secs: f64,
    /// Live flows torn down because a fault removed their path.
    pub flows_killed: u64,
    /// Reservations orphaned by a lost teardown message.
    pub orphans_created: u64,
    /// Orphaned reservations reclaimed by soft-state expiry.
    pub orphans_reclaimed: u64,
}

impl FaultBook {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `entity` went down at `now` (ignored if already
    /// down).
    pub fn record_down(&mut self, entity: FaultEntity, now: f64) {
        self.down_since.entry(entity).or_insert(now);
    }

    /// Records that `entity` came back at `now`, completing an outage
    /// (ignored if it was not down).
    pub fn record_up(&mut self, entity: FaultEntity, now: f64) {
        if let Some(start) = self.down_since.remove(&entity) {
            self.completed_outages += 1;
            self.total_repair_secs += now - start;
        }
    }

    /// Outages that completed (failure followed by repair).
    pub fn completed_outages(&self) -> u64 {
        self.completed_outages
    }

    /// Entities still down.
    pub fn open_outages(&self) -> usize {
        self.down_since.len()
    }

    /// Mean repair time over completed outages (0 when none completed).
    pub fn mean_recovery_secs(&self) -> f64 {
        if self.completed_outages == 0 {
            0.0
        } else {
            self.total_repair_secs / self.completed_outages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(n: u32) -> FaultEntity {
        FaultEntity::Link(LinkId::new(n))
    }

    #[test]
    fn outage_durations_accumulate() {
        let mut b = FaultBook::new();
        b.record_down(link(1), 10.0);
        b.record_down(FaultEntity::Node(NodeId::new(3)), 20.0);
        assert_eq!(b.open_outages(), 2);
        b.record_up(link(1), 40.0);
        b.record_up(FaultEntity::Node(NodeId::new(3)), 30.0);
        assert_eq!(b.completed_outages(), 2);
        assert_eq!(b.open_outages(), 0);
        assert!((b.mean_recovery_secs() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn double_fail_and_spurious_restore_are_ignored() {
        let mut b = FaultBook::new();
        b.record_down(link(7), 5.0);
        b.record_down(link(7), 8.0); // keeps the original start
        b.record_up(link(7), 15.0);
        assert_eq!(b.completed_outages(), 1);
        assert!((b.mean_recovery_secs() - 10.0).abs() < 1e-12);
        b.record_up(link(7), 99.0); // not down: no-op
        assert_eq!(b.completed_outages(), 1);
    }

    #[test]
    fn empty_book_reports_zeroes() {
        let b = FaultBook::new();
        assert_eq!(b.completed_outages(), 0);
        assert_eq!(b.mean_recovery_secs(), 0.0);
        assert_eq!(b.open_outages(), 0);
    }
}
