//! Outage accounting: the ledger behind the availability, recovery-time
//! and soft-state metrics.

use anycast_net::{LinkId, NodeId};
use anycast_telemetry::{MetricKey, MetricsRegistry};
use std::collections::HashMap;

/// A thing that can be down: one link or one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultEntity {
    /// A failed link.
    Link(LinkId),
    /// A crashed router.
    Node(NodeId),
}

/// Running ledger of one experiment's fault history.
///
/// The book never looks at the network itself; the experiment loop
/// reports state transitions and the book turns them into durations and
/// counts. Double-failing an already-down entity or restoring a healthy
/// one is ignored, so idempotent scripted plans stay well-defined.
///
/// All counts live in a telemetry [`MetricsRegistry`] rather than bespoke
/// fields, so the same numbers the end-of-run `Metrics` report are also
/// exportable as labelled metrics (see [`FaultBook::registry`]).
#[derive(Debug, Clone, Default)]
pub struct FaultBook {
    down_since: HashMap<FaultEntity, f64>,
    registry: MetricsRegistry,
}

fn counter(name: &str) -> MetricKey {
    MetricKey::plain(name)
}

const OUTAGES_COMPLETED: &str = "chaos_outages_completed_total";
const REPAIR_SECS: &str = "chaos_repair_secs_total";
const FLOWS_KILLED: &str = "chaos_flows_killed_total";
const ORPHANS_CREATED: &str = "chaos_orphans_created_total";
const ORPHANS_RECLAIMED: &str = "chaos_orphans_reclaimed_total";

impl FaultBook {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `entity` went down at `now` (ignored if already
    /// down).
    pub fn record_down(&mut self, entity: FaultEntity, now: f64) {
        self.down_since.entry(entity).or_insert(now);
    }

    /// Records that `entity` came back at `now`, completing an outage
    /// (ignored if it was not down).
    pub fn record_up(&mut self, entity: FaultEntity, now: f64) {
        if let Some(start) = self.down_since.remove(&entity) {
            self.registry.inc(counter(OUTAGES_COMPLETED), 1.0);
            self.registry.inc(counter(REPAIR_SECS), now - start);
        }
    }

    /// Records a live flow torn down because a fault removed its path.
    pub fn note_flow_killed(&mut self) {
        self.registry.inc(counter(FLOWS_KILLED), 1.0);
    }

    /// Records a reservation orphaned by a lost teardown message.
    pub fn note_orphan_created(&mut self) {
        self.registry.inc(counter(ORPHANS_CREATED), 1.0);
    }

    /// Records an orphaned reservation reclaimed by soft-state expiry.
    pub fn note_orphan_reclaimed(&mut self) {
        self.registry.inc(counter(ORPHANS_RECLAIMED), 1.0);
    }

    /// Live flows torn down because a fault removed their path.
    pub fn flows_killed(&self) -> u64 {
        self.registry.counter(&counter(FLOWS_KILLED)) as u64
    }

    /// Reservations orphaned by a lost teardown message.
    pub fn orphans_created(&self) -> u64 {
        self.registry.counter(&counter(ORPHANS_CREATED)) as u64
    }

    /// Orphaned reservations reclaimed by soft-state expiry.
    pub fn orphans_reclaimed(&self) -> u64 {
        self.registry.counter(&counter(ORPHANS_RECLAIMED)) as u64
    }

    /// Outages that completed (failure followed by repair).
    pub fn completed_outages(&self) -> u64 {
        self.registry.counter(&counter(OUTAGES_COMPLETED)) as u64
    }

    /// Entities still down.
    pub fn open_outages(&self) -> usize {
        self.down_since.len()
    }

    /// Mean repair time over completed outages (0 when none completed).
    pub fn mean_recovery_secs(&self) -> f64 {
        let completed = self.registry.counter(&counter(OUTAGES_COMPLETED));
        if completed == 0.0 {
            0.0
        } else {
            self.registry.counter(&counter(REPAIR_SECS)) / completed
        }
    }

    /// The underlying metrics registry (counters named `chaos_*`), for
    /// export alongside the run's other telemetry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(n: u32) -> FaultEntity {
        FaultEntity::Link(LinkId::new(n))
    }

    #[test]
    fn outage_durations_accumulate() {
        let mut b = FaultBook::new();
        b.record_down(link(1), 10.0);
        b.record_down(FaultEntity::Node(NodeId::new(3)), 20.0);
        assert_eq!(b.open_outages(), 2);
        b.record_up(link(1), 40.0);
        b.record_up(FaultEntity::Node(NodeId::new(3)), 30.0);
        assert_eq!(b.completed_outages(), 2);
        assert_eq!(b.open_outages(), 0);
        assert!((b.mean_recovery_secs() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn double_fail_and_spurious_restore_are_ignored() {
        let mut b = FaultBook::new();
        b.record_down(link(7), 5.0);
        b.record_down(link(7), 8.0); // keeps the original start
        b.record_up(link(7), 15.0);
        assert_eq!(b.completed_outages(), 1);
        assert!((b.mean_recovery_secs() - 10.0).abs() < 1e-12);
        b.record_up(link(7), 99.0); // not down: no-op
        assert_eq!(b.completed_outages(), 1);
    }

    #[test]
    fn empty_book_reports_zeroes() {
        let b = FaultBook::new();
        assert_eq!(b.completed_outages(), 0);
        assert_eq!(b.mean_recovery_secs(), 0.0);
        assert_eq!(b.open_outages(), 0);
        assert_eq!(b.flows_killed(), 0);
        assert_eq!(b.orphans_created(), 0);
        assert_eq!(b.orphans_reclaimed(), 0);
        assert!(b.registry().is_empty());
    }

    #[test]
    fn soft_state_counts_flow_through_registry() {
        let mut b = FaultBook::new();
        b.note_flow_killed();
        b.note_orphan_created();
        b.note_orphan_created();
        b.note_orphan_reclaimed();
        assert_eq!(b.flows_killed(), 1);
        assert_eq!(b.orphans_created(), 2);
        assert_eq!(b.orphans_reclaimed(), 1);
        assert_eq!(
            b.registry()
                .counter(&MetricKey::plain("chaos_orphans_created_total")),
            2.0
        );
    }
}
