//! Deterministic fault injection for the anycast admission-control
//! simulator.
//!
//! The paper's analysis (§3, §5) is fault-free: links never die, members
//! never crash, and RSVP teardown messages always arrive. This crate
//! supplies the missing failure model so the experiment can measure how
//! the admission systems degrade and recover:
//!
//! - [`FaultPlan`] describes *what* can fail — stochastic link and
//!   member up/down processes (exponential MTBF/MTTR), RSVP control-plane
//!   loss and delay, and an explicit scripted timeline.
//! - [`build_timeline`] expands a plan into a concrete, deterministic
//!   sequence of [`FaultAction`]s for one run: same plan + same RNG seed
//!   ⇒ bit-identical timeline, so faulty runs replay exactly.
//! - [`FaultBook`] keeps the outage ledger (down intervals, repair
//!   times, killed flows, orphaned reservations) that feeds the
//!   availability and recovery metrics.
//! - [`spec::parse_fault_plan`] reads a plan from a small TOML subset so
//!   the CLI can take `--faults plan.toml` without a TOML dependency.
//!
//! The crate deliberately knows nothing about admission policies: it
//! only speaks the vocabulary of [`anycast_net`] (links, nodes) and
//! [`anycast_rsvp`] (sessions, soft state), and the experiment loop in
//! `anycast-dac` interprets the actions.

mod book;
pub mod client;
mod plan;
pub mod spec;
mod timeline;

pub use book::{FaultBook, FaultEntity};
pub use client::{run_chaos_clients, ChaosClientPlan, ChaosClientReport};
pub use plan::{
    ControlFaultModel, FaultAction, FaultPlan, MessageFault, ScriptedFault, SignalingFaults,
    StochasticFaultModel,
};
pub use timeline::{build_timeline, FaultTimeline};
