//! Client-side fault driver for the admission daemon's wire protocol.
//!
//! The rest of this crate injects faults *inside* the simulated network
//! (links die, members crash, RSVP messages get lost). This module
//! attacks from the *outside*: it is a deterministic hostile-client
//! swarm that speaks the daemon's line-delimited JSON protocol badly on
//! purpose — connection churn, slow-loris writes, half-frames dropped
//! mid-line, malformed JSON, duplicate submits, reconnect-and-resume,
//! and teardowns that never get sent — so the service-layer soak test
//! can show the daemon neither leaks nor wedges under any of it.
//!
//! Determinism: every behaviour choice is drawn from a [`SimRng`] forked
//! per worker from the plan seed, so the same plan replays the same mix
//! of abuse (wall-clock interleaving against the daemon still varies —
//! that is the point of a soak, the *ledger* must not care).
//!
//! The module deliberately depends only on the wire format (plain JSON
//! over a socket), not on the daemon crate: it is the daemon's test
//! adversary, not its client library.

use anycast_sim::SimRng;
use anycast_telemetry::json::{parse, JsonValue};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// What a chaos swarm should do.
#[derive(Debug, Clone)]
pub struct ChaosClientPlan {
    /// Total connections to open across all workers.
    pub connections: usize,
    /// Concurrent worker threads (each gets a forked RNG stream).
    pub workers: usize,
    /// Seed for the behaviour mix.
    pub seed: u64,
    /// Exclusive upper bound for the `source` field of admits.
    pub source_count: usize,
    /// Exclusive upper bound for the `group` field of admits.
    pub group_count: usize,
    /// Demand of every admit, bits per second.
    pub demand_bps: u64,
    /// Holding time of every admit, simulated seconds.
    pub holding_secs: f64,
    /// Per-socket read timeout; a response slower than this is counted
    /// in [`ChaosClientReport::read_timeouts`] and the connection is
    /// abandoned (which is itself more churn for the daemon).
    pub read_timeout: Duration,
}

impl Default for ChaosClientPlan {
    fn default() -> Self {
        ChaosClientPlan {
            connections: 256,
            workers: 4,
            seed: 1,
            source_count: 9,
            group_count: 1,
            demand_bps: 64_000,
            holding_secs: 30.0,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// What the swarm observed, summed over all workers. Every counter is a
/// client-side view; the soak test reconciles them against the daemon's
/// own [`DaemonCounters`]-style accounting.
///
/// [`DaemonCounters`]: https://docs.rs/anycast-daemon
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosClientReport {
    /// Connections opened (including ones dropped on purpose).
    pub connections: u64,
    /// Well-formed admit lines fully written.
    pub admits_sent: u64,
    /// `decision` responses read.
    pub decisions: u64,
    /// ... of which were admitted.
    pub admitted: u64,
    /// `overloaded` responses read.
    pub overloaded: u64,
    /// `error` responses read.
    pub errors: u64,
    /// `shutting_down` responses read.
    pub shutdowns_seen: u64,
    /// Malformed lines deliberately sent.
    pub malformed_sent: u64,
    /// Duplicate same-token admits deliberately sent.
    pub duplicates_sent: u64,
    /// Connections dropped right after an admit, without reading.
    pub churned: u64,
    /// Admit lines written byte-dribbled (slow-loris) but completed.
    pub slow_loris: u64,
    /// Lines abandoned half-written (no newline ever sent).
    pub partial_frames: u64,
    /// `resume` ops sent.
    pub resumes_sent: u64,
    /// Resumes answered with a replayed `decision`.
    pub resumed_decided: u64,
    /// Resumes answered `pending` (decision then read on this conn).
    pub resumed_pending: u64,
    /// Resumes answered `unknown` (evicted, shed, or never journaled).
    pub resumed_unknown: u64,
    /// Wire `teardown` ops sent.
    pub teardowns_sent: u64,
    /// ... of which the daemon reported `reclaimed: true`.
    pub teardowns_reclaimed: u64,
    /// Admitted sessions whose teardown was deliberately never sent
    /// (the soft-state/holding-time path must reclaim them).
    pub teardowns_withheld: u64,
    /// Reads that hit the socket timeout (connection then abandoned).
    pub read_timeouts: u64,
}

impl ChaosClientReport {
    /// Folds another worker's counters into this one.
    pub fn merge(&mut self, other: &ChaosClientReport) {
        let ChaosClientReport {
            connections,
            admits_sent,
            decisions,
            admitted,
            overloaded,
            errors,
            shutdowns_seen,
            malformed_sent,
            duplicates_sent,
            churned,
            slow_loris,
            partial_frames,
            resumes_sent,
            resumed_decided,
            resumed_pending,
            resumed_unknown,
            teardowns_sent,
            teardowns_reclaimed,
            teardowns_withheld,
            read_timeouts,
        } = other;
        self.connections += connections;
        self.admits_sent += admits_sent;
        self.decisions += decisions;
        self.admitted += admitted;
        self.overloaded += overloaded;
        self.errors += errors;
        self.shutdowns_seen += shutdowns_seen;
        self.malformed_sent += malformed_sent;
        self.duplicates_sent += duplicates_sent;
        self.churned += churned;
        self.slow_loris += slow_loris;
        self.partial_frames += partial_frames;
        self.resumes_sent += resumes_sent;
        self.resumed_decided += resumed_decided;
        self.resumed_pending += resumed_pending;
        self.resumed_unknown += resumed_unknown;
        self.teardowns_sent += teardowns_sent;
        self.teardowns_reclaimed += teardowns_reclaimed;
        self.teardowns_withheld += teardowns_withheld;
        self.read_timeouts += read_timeouts;
    }
}

/// One live connection to the daemon.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str, timeout: Duration) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        let writer = stream.try_clone()?;
        Ok(Conn {
            writer,
            reader: BufReader::new(stream),
        })
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one response line; `None` on timeout, EOF, or junk.
    fn recv(&mut self) -> Option<JsonValue> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => parse(line.trim()).ok(),
        }
    }
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    match v {
        JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn op_of(v: &JsonValue) -> &str {
    match field(v, "op") {
        Some(JsonValue::Str(s)) => s.as_str(),
        _ => "",
    }
}

fn str_of<'a>(v: &'a JsonValue, key: &str) -> Option<&'a str> {
    match field(v, key) {
        Some(JsonValue::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn num_of(v: &JsonValue, key: &str) -> Option<f64> {
    match field(v, key) {
        Some(JsonValue::Num(x)) => Some(*x),
        _ => None,
    }
}

fn bool_of(v: &JsonValue, key: &str) -> Option<bool> {
    match field(v, key) {
        Some(JsonValue::Bool(b)) => Some(*b),
        _ => None,
    }
}

/// Renders an admit line with a correlation token.
fn admit_line(plan: &ChaosClientPlan, rng: &mut SimRng, token: &str) -> String {
    JsonValue::obj([
        ("op", JsonValue::Str("admit".into())),
        (
            "source",
            JsonValue::Num(rng.below(plan.source_count) as f64),
        ),
        ("group", JsonValue::Num(rng.below(plan.group_count) as f64)),
        ("demand_bps", JsonValue::Num(plan.demand_bps as f64)),
        ("holding_secs", JsonValue::Num(plan.holding_secs)),
        ("token", JsonValue::Str(token.into())),
    ])
    .render()
}

/// Reads responses until a `decision` (or terminal refusal) arrives for
/// a just-sent admit, tallying whatever shows up.
fn read_admit_outcome(conn: &mut Conn, report: &mut ChaosClientReport) -> Option<JsonValue> {
    loop {
        let Some(v) = conn.recv() else {
            report.read_timeouts += 1;
            return None;
        };
        match op_of(&v) {
            "decision" => {
                report.decisions += 1;
                if bool_of(&v, "admitted") == Some(true) {
                    report.admitted += 1;
                }
                return Some(v);
            }
            "overloaded" => {
                report.overloaded += 1;
                return None;
            }
            "error" => {
                report.errors += 1;
                return None;
            }
            "shutting_down" => {
                report.shutdowns_seen += 1;
                return None;
            }
            // `resumed`/`torn_down`/`stats` for someone else's question:
            // keep reading, the decision is still coming.
            _ => {}
        }
    }
}

/// One worker's share of the swarm. `backlog` carries tokens whose
/// verdicts were deliberately not read (churned connections) into later
/// resume behaviours.
#[allow(clippy::too_many_lines)]
fn run_worker(
    addr: &str,
    plan: &ChaosClientPlan,
    mut rng: SimRng,
    worker: usize,
    connections: usize,
) -> ChaosClientReport {
    let mut report = ChaosClientReport::default();
    let mut backlog: Vec<String> = Vec::new();
    let mut minted: u64 = 0;
    let mint = |minted: &mut u64| {
        let t = format!("w{worker}-{m}", m = *minted);
        *minted += 1;
        t
    };

    for _ in 0..connections {
        let Ok(mut conn) = Conn::open(addr, plan.read_timeout) else {
            continue;
        };
        report.connections += 1;
        match rng.below(8) {
            // Clean client: admit, read the verdict, tear the session
            // down when admitted.
            0 => {
                let token = mint(&mut minted);
                if conn.send(&admit_line(plan, &mut rng, &token)).is_err() {
                    continue;
                }
                report.admits_sent += 1;
                if let Some(v) = read_admit_outcome(&mut conn, &mut report) {
                    if let Some(session) = num_of(&v, "session") {
                        let line =
                            format!("{{\"op\":\"teardown\",\"session\":{}}}", session as u64);
                        if conn.send(&line).is_ok() {
                            report.teardowns_sent += 1;
                            if let Some(r) = conn.recv() {
                                if bool_of(&r, "reclaimed") == Some(true) {
                                    report.teardowns_reclaimed += 1;
                                }
                            } else {
                                report.read_timeouts += 1;
                            }
                        }
                    }
                }
            }
            // Churn: submit and vanish without reading. The token goes
            // to the backlog for a later resume.
            1 => {
                let token = mint(&mut minted);
                if conn.send(&admit_line(plan, &mut rng, &token)).is_ok() {
                    report.admits_sent += 1;
                    report.churned += 1;
                    backlog.push(token);
                }
            }
            // Slow-loris: the same admit, dribbled a few bytes at a
            // time. The daemon's reader must neither block the engine
            // nor give up on a slow-but-honest line.
            2 => {
                let token = mint(&mut minted);
                let line = admit_line(plan, &mut rng, &token);
                let bytes = line.as_bytes();
                let mut ok = true;
                for chunk in bytes.chunks(7) {
                    if conn.writer.write_all(chunk).is_err() || conn.writer.flush().is_err() {
                        ok = false;
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                if ok && conn.send("").is_ok() {
                    report.admits_sent += 1;
                    report.slow_loris += 1;
                    read_admit_outcome(&mut conn, &mut report);
                }
            }
            // Partial frame: half a line, then the connection dies.
            // The daemon must discard the fragment with the socket.
            3 => {
                let token = mint(&mut minted);
                let line = admit_line(plan, &mut rng, &token);
                let cut = line.len() / 2;
                if conn.writer.write_all(&line.as_bytes()[..cut]).is_ok() {
                    let _ = conn.writer.flush();
                    report.partial_frames += 1;
                }
            }
            // Malformed line, then a valid admit on the same connection:
            // the error must not poison the connection.
            4 => {
                let junk = match rng.below(4) {
                    0 => "}{ not json".to_string(),
                    1 => "{\"op\":\"frobnicate\"}".to_string(),
                    2 => "{\"op\":\"admit\",\"source\":-1}".to_string(),
                    _ => format!("{{\"op\":\"admit\",\"pad\":\"{}\"}}", "x".repeat(9000)),
                };
                if conn.send(&junk).is_err() {
                    continue;
                }
                report.malformed_sent += 1;
                if let Some(v) = conn.recv() {
                    if op_of(&v) == "error" {
                        report.errors += 1;
                    }
                } else {
                    report.read_timeouts += 1;
                    continue;
                }
                let token = mint(&mut minted);
                if conn.send(&admit_line(plan, &mut rng, &token)).is_ok() {
                    report.admits_sent += 1;
                    read_admit_outcome(&mut conn, &mut report);
                }
            }
            // Duplicate submit: the same token twice back-to-back. The
            // journal must answer the second from the first — two
            // responses, one engine decision.
            5 => {
                let token = mint(&mut minted);
                let line = admit_line(plan, &mut rng, &token);
                if conn.send(&line).is_err() || conn.send(&line).is_err() {
                    continue;
                }
                report.admits_sent += 1;
                report.duplicates_sent += 1;
                for _ in 0..2 {
                    let Some(v) = conn.recv() else {
                        report.read_timeouts += 1;
                        break;
                    };
                    match op_of(&v) {
                        "decision" => {
                            report.decisions += 1;
                            if bool_of(&v, "admitted") == Some(true) {
                                report.admitted += 1;
                            }
                        }
                        "overloaded" => report.overloaded += 1,
                        "resumed" => report.resumed_pending += 1,
                        "error" => report.errors += 1,
                        _ => {}
                    }
                }
            }
            // Resume: pick up a churned token on a fresh connection and
            // chase it to a verdict.
            6 => {
                let Some(token) = backlog.pop() else {
                    // Nothing to resume yet: behave cleanly instead.
                    let token = mint(&mut minted);
                    if conn.send(&admit_line(plan, &mut rng, &token)).is_ok() {
                        report.admits_sent += 1;
                        read_admit_outcome(&mut conn, &mut report);
                    }
                    continue;
                };
                let line = format!("{{\"op\":\"resume\",\"token\":\"{token}\"}}");
                if conn.send(&line).is_err() {
                    continue;
                }
                report.resumes_sent += 1;
                match conn.recv() {
                    None => report.read_timeouts += 1,
                    Some(v) if op_of(&v) == "decision" => {
                        report.resumed_decided += 1;
                    }
                    Some(v) if op_of(&v) == "resumed" => match str_of(&v, "state") {
                        Some("pending") => {
                            report.resumed_pending += 1;
                            // The verdict is now bound to this
                            // connection; wait for it.
                            read_admit_outcome(&mut conn, &mut report);
                        }
                        _ => report.resumed_unknown += 1,
                    },
                    Some(_) => {}
                }
            }
            // Lost teardown: admit, read the verdict, never tear down.
            // The reservation must drain by holding-time departure (or
            // §4.4 soft-state expiry when refresh is faulted) — the
            // soak's zero-leak assertion proves it.
            _ => {
                let token = mint(&mut minted);
                if conn.send(&admit_line(plan, &mut rng, &token)).is_err() {
                    continue;
                }
                report.admits_sent += 1;
                if let Some(v) = read_admit_outcome(&mut conn, &mut report) {
                    if num_of(&v, "session").is_some() {
                        report.teardowns_withheld += 1;
                    }
                }
            }
        }
    }
    report
}

/// Runs the swarm against a daemon at `addr` (a TCP address) and returns
/// the merged client-side tally. Workers run concurrently; each drains
/// its own share of [`ChaosClientPlan::connections`] with its own forked
/// RNG stream.
pub fn run_chaos_clients(addr: &str, plan: &ChaosClientPlan) -> ChaosClientReport {
    let workers = plan.workers.max(1);
    let mut root = SimRng::seed_from(plan.seed);
    let mut total = ChaosClientReport::default();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let rng = root.fork();
            let share = plan.connections / workers + usize::from(w < plan.connections % workers);
            let addr = addr.to_string();
            handles.push(s.spawn(move || run_worker(&addr, plan, rng, w, share)));
        }
        for h in handles {
            if let Ok(r) = h.join() {
                total.merge(&r);
            }
        }
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_shares_cover_all_connections() {
        let plan = ChaosClientPlan {
            connections: 10,
            workers: 4,
            ..ChaosClientPlan::default()
        };
        let shares: usize = (0..plan.workers)
            .map(|w| {
                plan.connections / plan.workers + usize::from(w < plan.connections % plan.workers)
            })
            .sum();
        assert_eq!(shares, plan.connections);
    }

    #[test]
    fn report_merge_sums_every_counter() {
        let mut a = ChaosClientReport {
            connections: 1,
            admits_sent: 2,
            decisions: 3,
            ..ChaosClientReport::default()
        };
        let b = ChaosClientReport {
            connections: 10,
            admits_sent: 20,
            decisions: 30,
            teardowns_withheld: 4,
            ..ChaosClientReport::default()
        };
        a.merge(&b);
        assert_eq!(a.connections, 11);
        assert_eq!(a.admits_sent, 22);
        assert_eq!(a.decisions, 33);
        assert_eq!(a.teardowns_withheld, 4);
    }

    #[test]
    fn admit_lines_are_valid_wire_json() {
        let plan = ChaosClientPlan::default();
        let mut rng = SimRng::seed_from(9);
        let line = admit_line(&plan, &mut rng, "w0-0");
        let v = parse(&line).unwrap();
        assert_eq!(op_of(&v), "admit");
        assert_eq!(str_of(&v, "token"), Some("w0-0"));
        assert!(num_of(&v, "demand_bps").unwrap() > 0.0);
    }
}
