//! The fault-plan vocabulary: what can break, how often, and on what
//! schedule.

use anycast_net::{LinkId, NodeId};
use anycast_rsvp::RefreshConfig;
use serde::{Deserialize, Serialize};

/// One atomic state change injected into the running experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Take a link down; flows whose path crosses it are killed.
    FailLink(LinkId),
    /// Bring a previously failed link back up.
    RestoreLink(LinkId),
    /// Crash a router (an anycast member, under the stochastic member
    /// model); all its incident links go down and flows through it die.
    CrashNode(NodeId),
    /// Bring a crashed router back.
    RestoreNode(NodeId),
}

impl FaultAction {
    /// Whether this action takes capacity away (as opposed to restoring
    /// it).
    pub fn is_failure(&self) -> bool {
        matches!(self, FaultAction::FailLink(_) | FaultAction::CrashNode(_))
    }
}

/// An alternating up/down renewal process: exponential time-to-failure
/// with mean `mtbf_secs`, exponential repair with mean `mttr_secs`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StochasticFaultModel {
    /// Mean time between failures (exponential), seconds of up time.
    pub mtbf_secs: f64,
    /// Mean time to repair (exponential), seconds of down time.
    pub mttr_secs: f64,
}

impl StochasticFaultModel {
    /// Builds a model, validating that both means are positive and
    /// finite.
    ///
    /// # Panics
    ///
    /// Panics on non-positive or non-finite means.
    pub fn new(mtbf_secs: f64, mttr_secs: f64) -> Self {
        assert!(
            mtbf_secs.is_finite() && mtbf_secs > 0.0,
            "MTBF must be positive and finite, got {mtbf_secs}"
        );
        assert!(
            mttr_secs.is_finite() && mttr_secs > 0.0,
            "MTTR must be positive and finite, got {mttr_secs}"
        );
        StochasticFaultModel {
            mtbf_secs,
            mttr_secs,
        }
    }

    /// Long-run fraction of time an entity under this model is up.
    pub fn steady_state_availability(&self) -> f64 {
        self.mtbf_secs / (self.mtbf_secs + self.mttr_secs)
    }
}

/// RSVP control-plane faults: teardown (PATH_TEAR) messages can be lost
/// — orphaning the reservation until soft state expires it — or delayed,
/// holding bandwidth past the flow's departure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlFaultModel {
    /// Probability that a flow's teardown message is lost entirely.
    pub teardown_loss_probability: f64,
    /// Mean of an exponential extra delay on (non-lost) teardown
    /// delivery; `0` means teardowns land instantly, as in the fault-free
    /// model.
    pub teardown_delay_secs: f64,
}

impl ControlFaultModel {
    /// No control-plane faults at all.
    pub fn none() -> Self {
        ControlFaultModel {
            teardown_loss_probability: 0.0,
            teardown_delay_secs: 0.0,
        }
    }

    /// Whether this model never perturbs anything.
    pub fn is_inert(&self) -> bool {
        self.teardown_loss_probability == 0.0 && self.teardown_delay_secs == 0.0
    }
}

impl Default for ControlFaultModel {
    fn default() -> Self {
        Self::none()
    }
}

/// Loss and delay knobs for one signaling message kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageFault {
    /// Probability that one *hop crossing* of the message is lost.
    pub loss_probability: f64,
    /// Mean of an exponential extra delay added to each (non-lost) hop
    /// crossing, on top of the configured per-hop signaling delay.
    pub extra_delay_secs: f64,
}

impl MessageFault {
    /// No perturbation at all.
    pub fn none() -> Self {
        MessageFault {
            loss_probability: 0.0,
            extra_delay_secs: 0.0,
        }
    }

    /// Whether this fault never perturbs anything.
    pub fn is_inert(&self) -> bool {
        self.loss_probability == 0.0 && self.extra_delay_secs == 0.0
    }

    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics on a loss probability outside `[0, 1]` or a negative /
    /// non-finite delay mean.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.loss_probability),
            "loss probability {} not in [0,1]",
            self.loss_probability
        );
        assert!(
            self.extra_delay_secs.is_finite() && self.extra_delay_secs >= 0.0,
            "extra delay mean {} must be non-negative",
            self.extra_delay_secs
        );
    }
}

impl Default for MessageFault {
    fn default() -> Self {
        Self::none()
    }
}

/// Per-kind faults for the two-phase setup signaling (PATH / RESV /
/// RESV_ERR). Only meaningful when the experiment runs the two-phase
/// engine — the atomic engine exchanges no individual messages to lose.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SignalingFaults {
    /// Faults on PATH hop crossings (forward, hold-placing direction).
    pub path: MessageFault,
    /// Faults on RESV hop crossings (backward, confirming direction). A
    /// lost RESV strands the setup's holds until their timers expire.
    pub resv: MessageFault,
    /// Faults on RESV_ERR hop crossings (backward, refusal direction). A
    /// lost RESV_ERR leaves the source waiting for its setup timeout.
    pub resv_err: MessageFault,
}

impl SignalingFaults {
    /// No signaling faults at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether no message kind is ever perturbed.
    pub fn is_inert(&self) -> bool {
        self.path.is_inert() && self.resv.is_inert() && self.resv_err.is_inert()
    }
}

/// One hand-scripted fault at an absolute simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScriptedFault {
    /// When the action fires, in seconds of simulated time.
    pub at_secs: f64,
    /// What happens.
    pub action: FaultAction,
}

/// Full failure description for one experiment run.
///
/// [`FaultPlan::none`] is the fault-free plan and is the default of
/// `ExperimentConfig`; an experiment run under it must be bit-identical
/// to one that predates fault injection entirely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Stochastic up/down process applied independently to every link
    /// (`None` = links never fail on their own).
    pub link_model: Option<StochasticFaultModel>,
    /// Stochastic crash/repair process applied independently to every
    /// anycast member router (`None` = members never crash).
    pub member_model: Option<StochasticFaultModel>,
    /// RSVP control-plane loss and delay.
    pub control: ControlFaultModel,
    /// Two-phase setup signaling faults (per message kind).
    pub signaling: SignalingFaults,
    /// Soft-state refresh lifecycle governing how fast orphaned
    /// reservations are reclaimed.
    pub refresh: RefreshConfig,
    /// Explicit scripted faults, merged with the stochastic timelines.
    pub script: Vec<ScriptedFault>,
}

impl FaultPlan {
    /// The fault-free plan: nothing ever fails and no control message is
    /// perturbed. Soft-state refresh still runs (it is part of RSVP, not
    /// a fault), at the protocol default cadence.
    pub fn none() -> Self {
        FaultPlan {
            link_model: None,
            member_model: None,
            control: ControlFaultModel::none(),
            signaling: SignalingFaults::none(),
            refresh: RefreshConfig::rsvp_default(),
            script: Vec::new(),
        }
    }

    /// Whether this plan can never inject any fault.
    pub fn is_inert(&self) -> bool {
        self.link_model.is_none()
            && self.member_model.is_none()
            && self.control.is_inert()
            && self.signaling.is_inert()
            && self.script.is_empty()
    }

    /// Installs a stochastic link up/down model.
    pub fn with_link_model(mut self, mtbf_secs: f64, mttr_secs: f64) -> Self {
        self.link_model = Some(StochasticFaultModel::new(mtbf_secs, mttr_secs));
        self
    }

    /// Installs a stochastic member crash/repair model.
    pub fn with_member_model(mut self, mtbf_secs: f64, mttr_secs: f64) -> Self {
        self.member_model = Some(StochasticFaultModel::new(mtbf_secs, mttr_secs));
        self
    }

    /// Sets the probability that a flow's teardown message is lost.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is a probability in `[0, 1]`.
    pub fn with_teardown_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} not in [0,1]"
        );
        self.control.teardown_loss_probability = p;
        self
    }

    /// Sets the mean exponential teardown delivery delay.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite means.
    pub fn with_teardown_delay(mut self, mean_secs: f64) -> Self {
        assert!(
            mean_secs.is_finite() && mean_secs >= 0.0,
            "teardown delay mean {mean_secs} must be non-negative"
        );
        self.control.teardown_delay_secs = mean_secs;
        self
    }

    /// Replaces the two-phase signaling fault knobs.
    ///
    /// # Panics
    ///
    /// Panics when any per-kind knob is out of range (see
    /// [`MessageFault::validate`]).
    pub fn with_signaling(mut self, signaling: SignalingFaults) -> Self {
        signaling.path.validate();
        signaling.resv.validate();
        signaling.resv_err.validate();
        self.signaling = signaling;
        self
    }

    /// Replaces the soft-state refresh lifecycle.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive refresh interval or a zero missed-refresh
    /// limit.
    pub fn with_refresh(mut self, refresh: RefreshConfig) -> Self {
        assert!(
            refresh.refresh_interval_secs.is_finite() && refresh.refresh_interval_secs > 0.0,
            "refresh interval must be positive"
        );
        assert!(
            refresh.missed_refresh_limit > 0,
            "missed-refresh limit must be at least 1"
        );
        self.refresh = refresh;
        self
    }

    /// Appends one scripted fault.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite fire time.
    pub fn with_scripted(mut self, at_secs: f64, action: FaultAction) -> Self {
        assert!(
            at_secs.is_finite() && at_secs >= 0.0,
            "scripted fault time {at_secs} must be non-negative"
        );
        self.script.push(ScriptedFault { at_secs, action });
        self
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_inert());
        assert_eq!(p, FaultPlan::default());
        assert_eq!(p.refresh, RefreshConfig::rsvp_default());
    }

    #[test]
    fn any_knob_breaks_inertness() {
        assert!(!FaultPlan::none().with_link_model(100.0, 10.0).is_inert());
        assert!(!FaultPlan::none().with_member_model(100.0, 10.0).is_inert());
        assert!(!FaultPlan::none().with_teardown_loss(0.1).is_inert());
        assert!(!FaultPlan::none().with_teardown_delay(5.0).is_inert());
        assert!(!FaultPlan::none()
            .with_signaling(SignalingFaults {
                resv: MessageFault {
                    loss_probability: 0.2,
                    extra_delay_secs: 0.0,
                },
                ..SignalingFaults::none()
            })
            .is_inert());
        assert!(!FaultPlan::none()
            .with_scripted(10.0, FaultAction::FailLink(LinkId::new(0)))
            .is_inert());
    }

    #[test]
    fn steady_state_availability() {
        let m = StochasticFaultModel::new(90.0, 10.0);
        assert!((m.steady_state_availability() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn failure_actions_classified() {
        assert!(FaultAction::FailLink(LinkId::new(1)).is_failure());
        assert!(FaultAction::CrashNode(NodeId::new(1)).is_failure());
        assert!(!FaultAction::RestoreLink(LinkId::new(1)).is_failure());
        assert!(!FaultAction::RestoreNode(NodeId::new(1)).is_failure());
    }

    #[test]
    #[should_panic(expected = "MTBF must be positive")]
    fn zero_mtbf_rejected() {
        let _ = StochasticFaultModel::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn bad_loss_probability_rejected() {
        let _ = FaultPlan::none().with_teardown_loss(1.5);
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn bad_signaling_delay_rejected() {
        let _ = FaultPlan::none().with_signaling(SignalingFaults {
            path: MessageFault {
                loss_probability: 0.0,
                extra_delay_secs: -1.0,
            },
            ..SignalingFaults::none()
        });
    }
}
