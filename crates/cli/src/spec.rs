//! Textual specifications for topologies and admission systems.

use anycast_dac::experiment::SystemSpec;
use anycast_dac::policy::{HistoryMode, PolicySpec};
use anycast_dac::RetrialPolicy;
use anycast_net::{io, topologies, Bandwidth, Topology};

/// Resolves a `--topology` specification:
///
/// * `mci` (default) — the paper's calibrated MCI backbone;
/// * `grid:WxH`, `ring:N`, `star:N`, `waxman:N:SEED` — synthetic families
///   (100 Mb/s links);
/// * `fat_tree:K`, `clos:SPINE:LEAF:HOSTS` — datacenter fabrics
///   (100 Mb/s links);
/// * anything else — a path to an edge-list file
///   (see [`anycast_net::io`]).
///
/// # Errors
///
/// A human-readable message on malformed specs or unreadable files.
pub fn parse_topology(spec: &str) -> Result<Topology, String> {
    let cap = Bandwidth::from_mbps(100);
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or_default();
    match head {
        "mci" => Ok(topologies::mci()),
        "grid" => {
            let dims = parts
                .next()
                .ok_or_else(|| "grid needs dimensions, e.g. grid:5x4".to_string())?;
            let (w, h) = dims
                .split_once('x')
                .ok_or_else(|| format!("bad grid dimensions `{dims}` (expected WxH)"))?;
            let w: usize = w.parse().map_err(|e| format!("bad grid width: {e}"))?;
            let h: usize = h.parse().map_err(|e| format!("bad grid height: {e}"))?;
            if w == 0 || h == 0 {
                return Err("grid dimensions must be positive".to_string());
            }
            Ok(topologies::grid(w, h, cap))
        }
        "ring" => {
            let n: usize = parts
                .next()
                .ok_or_else(|| "ring needs a size, e.g. ring:19".to_string())?
                .parse()
                .map_err(|e| format!("bad ring size: {e}"))?;
            if n < 3 {
                return Err("a ring needs at least 3 nodes".to_string());
            }
            Ok(topologies::ring(n, cap))
        }
        "star" => {
            let n: usize = parts
                .next()
                .ok_or_else(|| "star needs a size, e.g. star:8".to_string())?
                .parse()
                .map_err(|e| format!("bad star size: {e}"))?;
            if n < 2 {
                return Err("a star needs at least 2 nodes".to_string());
            }
            Ok(topologies::star(n, cap))
        }
        "waxman" => {
            let n: usize = parts
                .next()
                .ok_or_else(|| "waxman needs a size, e.g. waxman:19:7".to_string())?
                .parse()
                .map_err(|e| format!("bad waxman size: {e}"))?;
            let seed: u64 = parts
                .next()
                .unwrap_or("7")
                .parse()
                .map_err(|e| format!("bad waxman seed: {e}"))?;
            if n < 2 {
                return Err("waxman needs at least 2 nodes".to_string());
            }
            topologies::waxman(n, 0.5, 0.5, seed, cap)
                .map_err(|e| format!("waxman:{n}:{seed}: {e}"))
        }
        "fat_tree" => {
            let k: usize = parts
                .next()
                .ok_or_else(|| "fat_tree needs a parameter, e.g. fat_tree:4".to_string())?
                .parse()
                .map_err(|e| format!("bad fat-tree parameter: {e}"))?;
            if k < 2 || !k.is_multiple_of(2) {
                return Err(format!(
                    "fat-tree parameter k must be even and >= 2, got {k}"
                ));
            }
            Ok(topologies::fat_tree(k, cap))
        }
        "clos" => {
            let mut dim = |what: &str| -> Result<usize, String> {
                parts
                    .next()
                    .ok_or_else(|| format!("clos needs {what}, e.g. clos:4:8:16"))?
                    .parse::<usize>()
                    .map_err(|e| format!("bad clos {what}: {e}"))
                    .and_then(|v| {
                        if v == 0 {
                            Err(format!("clos {what} must be positive"))
                        } else {
                            Ok(v)
                        }
                    })
            };
            let spine = dim("a spine count")?;
            let leaf = dim("a leaf count")?;
            let hosts = dim("a hosts-per-leaf count")?;
            Ok(topologies::clos(spine, leaf, hosts, cap))
        }
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read topology file `{path}`: {e}"))?;
            io::parse_edge_list(&text).map_err(|e| format!("`{path}`: {e}"))
        }
    }
}

/// Resolves a `--system` specification:
///
/// * `ed`, `wddh`, `wddb` — the DAC with that selection algorithm;
/// * `sp`, `gdi` — the baselines.
///
/// `r` is the retrial limit for DAC systems, `alpha` the WD/D+H damping,
/// and `multipath > 1` upgrades DAC systems to the multipath variant.
///
/// # Errors
///
/// On unknown names or out-of-range parameters.
pub fn parse_system(
    name: &str,
    r: u32,
    alpha: f64,
    multipath: usize,
) -> Result<SystemSpec, String> {
    if r == 0 {
        return Err("--r must be at least 1".to_string());
    }
    if multipath == 0 {
        return Err("--multipath must be at least 1".to_string());
    }
    let policy = match name {
        "ed" => PolicySpec::Ed,
        "wddh" => {
            if !(0.0..=1.0).contains(&alpha) {
                return Err(format!("--alpha must lie in [0, 1], got {alpha}"));
            }
            PolicySpec::WdDh {
                alpha,
                mode: HistoryMode::FromBase,
            }
        }
        "wddb" => PolicySpec::WdDb,
        "sp" => return Ok(SystemSpec::ShortestPath),
        "gdi" => return Ok(SystemSpec::GlobalDynamic),
        other => {
            return Err(format!(
                "unknown system `{other}` (expected ed, wddh, wddb, sp or gdi)"
            ))
        }
    };
    Ok(if multipath > 1 {
        SystemSpec::DacMultipath {
            policy,
            retrial: RetrialPolicy::FixedLimit(r),
            paths_per_member: multipath,
        }
    } else {
        SystemSpec::Dac {
            policy,
            retrial: RetrialPolicy::FixedLimit(r),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_topologies() {
        assert_eq!(parse_topology("mci").unwrap().node_count(), 19);
        assert_eq!(parse_topology("grid:5x4").unwrap().node_count(), 20);
        assert_eq!(parse_topology("ring:7").unwrap().link_count(), 7);
        assert_eq!(parse_topology("star:6").unwrap().link_count(), 5);
        let w = parse_topology("waxman:12:3").unwrap();
        assert_eq!(w.node_count(), 12);
        assert!(w.is_connected());
        let ft = parse_topology("fat_tree:4").unwrap();
        assert_eq!(ft.node_count(), 36);
        assert!(ft.is_connected());
        let cl = parse_topology("clos:2:3:4").unwrap();
        assert_eq!(cl.node_count(), 2 + 3 * 5);
        assert!(cl.is_connected());
    }

    #[test]
    fn bad_topology_specs() {
        for bad in [
            "grid",
            "grid:5",
            "grid:0x3",
            "ring:2",
            "star:1",
            "waxman:1",
            "fat_tree",
            "fat_tree:3",
            "clos:2:3",
            "clos:0:3:4",
            "/no/such/file.edges",
        ] {
            assert!(parse_topology(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn topology_file_round_trip() {
        let path = std::env::temp_dir().join("anycast_cli_test.edges");
        std::fs::write(&path, "0 1 1000\n1 2 1000\n").unwrap();
        let topo = parse_topology(path.to_str().unwrap()).unwrap();
        assert_eq!(topo.node_count(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn systems() {
        assert_eq!(parse_system("ed", 2, 0.5, 1).unwrap().label(), "<ED,2>");
        assert_eq!(
            parse_system("wddh", 3, 0.25, 1).unwrap().label(),
            "<WD/D+H,3>"
        );
        assert_eq!(
            parse_system("wddb", 1, 0.5, 1).unwrap().label(),
            "<WD/D+B,1>"
        );
        assert_eq!(parse_system("sp", 1, 0.5, 1).unwrap().label(), "SP");
        assert_eq!(parse_system("gdi", 1, 0.5, 1).unwrap().label(), "GDI");
        assert_eq!(
            parse_system("wddh", 2, 0.5, 3).unwrap().label(),
            "<WD/D+H,2,k=3>"
        );
    }

    #[test]
    fn bad_systems() {
        assert!(parse_system("bogus", 2, 0.5, 1).is_err());
        assert!(parse_system("ed", 0, 0.5, 1).is_err());
        assert!(parse_system("wddh", 2, 1.5, 1).is_err());
        assert!(parse_system("ed", 2, 0.5, 0).is_err());
    }
}
