//! A small, dependency-free command-line argument parser.
//!
//! Grammar: `anycast <command> [--flag value]... [--switch]...`.
//! Flags take exactly one value; switches take none. Unknown flags are
//! errors (a typo must never silently run a long simulation with
//! defaults).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Display;
use std::str::FromStr;

/// Parsed arguments for one subcommand.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    switches: BTreeSet<String>,
    consumed: BTreeSet<String>,
}

impl Args {
    /// Parses raw arguments. `switches` lists the flag names (without
    /// `--`) that take no value; everything else starting with `--`
    /// expects one.
    ///
    /// # Errors
    ///
    /// A human-readable message for stray positionals, missing values or
    /// duplicate flags.
    pub fn parse<I>(raw: I, switches: &[&str]) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(token) = iter.next() {
            let Some(name) = token.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{token}`"));
            };
            if name.is_empty() {
                return Err("empty flag `--`".to_string());
            }
            if switches.contains(&name) {
                if !out.switches.insert(name.to_string()) {
                    return Err(format!("switch --{name} given twice"));
                }
                continue;
            }
            let Some(value) = iter.next() else {
                return Err(format!("flag --{name} expects a value"));
            };
            if out.flags.insert(name.to_string(), value).is_some() {
                return Err(format!("flag --{name} given twice"));
            }
        }
        Ok(out)
    }

    /// Returns a required flag parsed as `T`.
    ///
    /// # Errors
    ///
    /// When missing or unparsable.
    pub fn require<T>(&mut self, name: &str) -> Result<T, String>
    where
        T: FromStr,
        T::Err: Display,
    {
        self.consumed.insert(name.to_string());
        let raw = self
            .flags
            .get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))?;
        raw.parse()
            .map_err(|e| format!("--{name}: cannot parse `{raw}`: {e}"))
    }

    /// Returns an optional flag parsed as `T`, or `default`.
    ///
    /// # Errors
    ///
    /// When present but unparsable.
    pub fn get_or<T>(&mut self, name: &str, default: T) -> Result<T, String>
    where
        T: FromStr,
        T::Err: Display,
    {
        self.consumed.insert(name.to_string());
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("--{name}: cannot parse `{raw}`: {e}")),
        }
    }

    /// Returns an optional flag's raw string.
    pub fn get_str(&mut self, name: &str) -> Option<String> {
        self.consumed.insert(name.to_string());
        self.flags.get(name).cloned()
    }

    /// Whether a switch was given.
    pub fn switch(&mut self, name: &str) -> bool {
        self.consumed.insert(name.to_string());
        self.switches.contains(name)
    }

    /// Errors if any provided flag was never consumed by the command —
    /// the typo guard.
    ///
    /// # Errors
    ///
    /// Names the first unknown flag.
    pub fn finish(&self) -> Result<(), String> {
        for name in self.flags.keys().chain(self.switches.iter()) {
            if !self.consumed.contains(name) {
                return Err(format!("unknown flag --{name} for this command"));
            }
        }
        Ok(())
    }
}

/// Parses a comma-separated list of `u32` node ids.
///
/// # Errors
///
/// On any non-integer element or an empty list.
pub fn parse_id_list(raw: &str) -> Result<Vec<u32>, String> {
    let ids: Result<Vec<u32>, _> = raw
        .split(',')
        .map(|part| part.trim().parse::<u32>())
        .collect();
    let ids = ids.map_err(|e| format!("bad node list `{raw}`: {e}"))?;
    if ids.is_empty() {
        return Err("node list is empty".to_string());
    }
    Ok(ids)
}

/// Parses a sweep range `start:end:step` (inclusive ends) or a single
/// number, into the list of values.
///
/// # Errors
///
/// On malformed syntax, non-positive step, or an empty range.
pub fn parse_range(raw: &str) -> Result<Vec<f64>, String> {
    let parts: Vec<&str> = raw.split(':').collect();
    match parts.as_slice() {
        [single] => {
            let v: f64 = single
                .parse()
                .map_err(|e| format!("bad number `{single}`: {e}"))?;
            Ok(vec![v])
        }
        [start, end, step] => {
            let (start, end, step): (f64, f64, f64) = (
                start.parse().map_err(|e| format!("bad start: {e}"))?,
                end.parse().map_err(|e| format!("bad end: {e}"))?,
                step.parse().map_err(|e| format!("bad step: {e}"))?,
            );
            if step <= 0.0 || step.is_nan() {
                return Err("range step must be positive".to_string());
            }
            if end < start {
                return Err("range end precedes start".to_string());
            }
            let mut out = Vec::new();
            let mut v = start;
            while v <= end + 1e-9 {
                out.push(v);
                v += step;
            }
            Ok(out)
        }
        _ => Err(format!("range `{raw}` must be NUM or START:END:STEP")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_switches() {
        let mut a = Args::parse(
            strs(&["--lambda", "20", "--quick", "--seed", "7"]),
            &["quick"],
        )
        .unwrap();
        assert_eq!(a.require::<f64>("lambda").unwrap(), 20.0);
        assert_eq!(a.get_or::<u64>("seed", 0).unwrap(), 7);
        assert!(a.switch("quick"));
        assert!(!a.switch("full"));
        a.finish().unwrap();
    }

    #[test]
    fn rejects_unknown_flags_at_finish() {
        let mut a = Args::parse(strs(&["--oops", "1"]), &[]).unwrap();
        let _ = a.get_or::<u64>("seed", 0);
        let err = a.finish().unwrap_err();
        assert!(err.contains("--oops"), "{err}");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(strs(&["positional"]), &[]).is_err());
        assert!(Args::parse(strs(&["--flag"]), &[]).is_err());
        assert!(Args::parse(strs(&["--a", "1", "--a", "2"]), &[]).is_err());
        assert!(Args::parse(strs(&["--q", "--q"]), &["q"]).is_err());
        assert!(Args::parse(strs(&["--"]), &[]).is_err());
    }

    #[test]
    fn missing_required_flag() {
        let mut a = Args::parse(strs(&[]), &[]).unwrap();
        let err = a.require::<f64>("lambda").unwrap_err();
        assert!(err.contains("--lambda"));
    }

    #[test]
    fn unparsable_value() {
        let mut a = Args::parse(strs(&["--lambda", "abc"]), &[]).unwrap();
        assert!(a.require::<f64>("lambda").is_err());
    }

    #[test]
    fn id_lists() {
        assert_eq!(parse_id_list("0,4, 8").unwrap(), vec![0, 4, 8]);
        assert!(parse_id_list("0,x").is_err());
        assert!(parse_id_list("").is_err());
    }

    #[test]
    fn ranges() {
        assert_eq!(parse_range("5").unwrap(), vec![5.0]);
        assert_eq!(parse_range("5:20:5").unwrap(), vec![5.0, 10.0, 15.0, 20.0]);
        assert!(parse_range("5:20").is_err());
        assert!(parse_range("5:20:0").is_err());
        assert!(parse_range("20:5:5").is_err());
        assert!(parse_range("a:b:c").is_err());
    }
}
