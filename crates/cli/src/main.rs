//! `anycast` — command-line front end for the admission-control workspace.
//!
//! ```text
//! anycast simulate --lambda 25 --system wddh --r 2        # one simulation
//! anycast sweep --lambdas 5:50:5 --system ed --r 2        # a λ sweep
//! anycast trace saturated --out traces                    # export event traces
//! anycast record --lambda 20 --out trace.jsonl            # dump an arrival trace
//! anycast replay --trace trace.jsonl --lambda 20          # replay it online
//! anycast serve --listen 127.0.0.1:4730 --warmup 0        # live admission daemon
//! anycast predict --lambda 35 --system ed1                # Appendix-A analysis
//! anycast predict --lambdas 5:50:2.5 --system wddh        # calibrated estimator sweep
//! anycast topo --topology grid:5x4                        # structure report
//! ```
//!
//! Run `anycast help` (or any subcommand with `--help`) for details.

mod args;
mod commands;
mod spec;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "help".to_string());
    let rest: Vec<String> = argv.collect();
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        commands::print_help(&command);
        return ExitCode::SUCCESS;
    }
    let result = match command.as_str() {
        "simulate" => commands::simulate(rest),
        "sweep" => commands::sweep(rest),
        "trace" => commands::trace(rest),
        "record" => commands::record(rest),
        "replay" => commands::replay(rest),
        "serve" => commands::serve(rest),
        "predict" => commands::predict(rest),
        "topo" => commands::topo(rest),
        "help" | "--help" | "-h" => {
            commands::print_help("");
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `anycast help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("anycast: {message}");
            ExitCode::from(2)
        }
    }
}
