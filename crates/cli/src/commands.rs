//! The CLI subcommands.

use crate::args::{parse_id_list, parse_range, Args};
use crate::spec::{parse_system, parse_topology};
use anycast_analysis::scenario::{build_scenario, AnalyzedSystem, ScenarioSpec};
use anycast_analysis::{predict_ap, BlockingModel};
use anycast_bench::{default_jobs, run_grid};
use anycast_dac::experiment::{run_experiment, ArrivalProcess, ExperimentConfig};
use anycast_net::{metrics, LinkId, NodeId, Topology};
use anycast_sim::SimRng;

/// Prints usage for a command (or the overview for anything else).
pub fn print_help(command: &str) {
    match command {
        "simulate" => println!(
            "usage: anycast simulate --lambda RATE [options]\n\
             \n\
             Runs one closed-loop admission-control simulation.\n\
             \n\
             options:\n\
             \x20 --system ed|wddh|wddb|sp|gdi   admission system (default wddh)\n\
             \x20 --r N                          retrial limit (default 2)\n\
             \x20 --alpha X                      WD/D+H damping in [0,1] (default 0.5)\n\
             \x20 --multipath K                  K shortest routes per member (default 1)\n\
             \x20 --topology SPEC                mci | grid:WxH | ring:N | star:N |\n\
             \x20                                waxman:N:SEED | <edge-list file> (default mci)\n\
             \x20 --group IDS                    comma-separated member routers (default 0,4,8,12,16)\n\
             \x20 --sources IDS                  comma-separated source routers (default: odd\n\
             \x20                                routers on mci, all non-members elsewhere)\n\
             \x20 --seed N                       PRNG seed (default 1)\n\
             \x20 --reps N                       independent replications; seeds are RNG\n\
             \x20                                substreams of --seed (default 1)\n\
             \x20 --jobs N                       worker threads for replications/sweep points\n\
             \x20                                (default: available cores; results are\n\
             \x20                                bit-identical for every N)\n\
             \x20 --warmup SECS                  warm-up period (default 1800)\n\
             \x20 --measure SECS                 measured period (default 3600)\n\
             \x20 --burstiness B                 MMPP-2 burstiness in [1,2) (default: Poisson)\n\
             \x20 --faults FILE                  fault-plan spec (TOML subset; see\n\
             \x20                                anycast-chaos::spec for the grammar)"
        ),
        "sweep" => println!(
            "usage: anycast sweep --lambdas START:END:STEP [simulate options]\n\
             \n\
             Runs a λ sweep and prints one row per rate. Takes the same\n\
             options as `simulate`, with --lambdas replacing --lambda;\n\
             --no-header omits the column header for scripting.\n\
             Sweep points run on --jobs worker threads (default: available\n\
             cores); output is bit-identical for every --jobs value."
        ),
        "predict" => println!(
            "usage: anycast predict --lambda RATE [options]\n\
             \n\
             Evaluates the Appendix-A analytical model (no simulation).\n\
             \n\
             options:\n\
             \x20 --system ed1|sp                analysed system (default ed1)\n\
             \x20 --model erlang|uaa             link-blocking model (default erlang)\n\
             \x20 --topology SPEC                as in `simulate`\n\
             \x20 --group IDS / --sources IDS    as in `simulate`\n\
             \x20 --hot N                        list the N hottest links (default 5)"
        ),
        "topo" => println!(
            "usage: anycast topo [--topology SPEC]\n\
             \n\
             Prints structural metrics of a topology."
        ),
        _ => println!(
            "anycast — distributed admission control for anycast flows (ICDCS 2001)\n\
             \n\
             commands:\n\
             \x20 simulate   run one closed-loop simulation\n\
             \x20 sweep      run a λ sweep of simulations\n\
             \x20 predict    analytical admission probability (Appendix A)\n\
             \x20 topo       topology structure report\n\
             \x20 help       this overview\n\
             \n\
             `anycast <command> --help` shows per-command options."
        ),
    }
}

/// Builds the topology and experiment configuration shared by `simulate`
/// and `sweep` from the common option set.
fn common_config(args: &mut Args, lambda: f64) -> Result<(Topology, ExperimentConfig), String> {
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(format!("arrival rate must be positive, got {lambda}"));
    }
    let system_name = args.get_str("system").unwrap_or_else(|| "wddh".into());
    let r: u32 = args.get_or("r", 2)?;
    let alpha: f64 = args.get_or("alpha", 0.5)?;
    let multipath: usize = args.get_or("multipath", 1)?;
    let system = parse_system(&system_name, r, alpha, multipath)?;
    let topo_spec = args.get_str("topology").unwrap_or_else(|| "mci".into());
    let topo = parse_topology(&topo_spec)?;

    let mut config = ExperimentConfig::paper_defaults(lambda, system)
        .with_seed(args.get_or("seed", 1)?)
        .with_warmup_secs(args.get_or("warmup", 1_800.0)?)
        .with_measure_secs(args.get_or("measure", 3_600.0)?);
    if let Some(group) = args.get_str("group") {
        config = config.with_group(
            parse_id_list(&group)?
                .into_iter()
                .map(NodeId::new)
                .collect(),
        );
    }
    if let Some(sources) = args.get_str("sources") {
        config = config.with_sources(
            parse_id_list(&sources)?
                .into_iter()
                .map(NodeId::new)
                .collect(),
        );
    } else if topo_spec != "mci" {
        // The paper's odd-router default only makes sense on the MCI
        // backbone; elsewhere default to every non-member node.
        let members: std::collections::BTreeSet<u32> =
            config.group_members.iter().map(|n| n.raw()).collect();
        config = config.with_sources(
            topo.nodes()
                .filter(|n| !members.contains(&n.raw()))
                .collect(),
        );
        if config.sources.is_empty() {
            return Err("every node is a group member; no sources remain".to_string());
        }
    }
    if let Some(b) = args.get_str("burstiness") {
        let burstiness: f64 = b
            .parse()
            .map_err(|e| format!("--burstiness: cannot parse `{b}`: {e}"))?;
        if !(1.0..2.0).contains(&burstiness) {
            return Err(format!("--burstiness must lie in [1, 2), got {burstiness}"));
        }
        config = config.with_arrivals(ArrivalProcess::Bursty {
            burstiness,
            mean_sojourn_secs: 60.0,
        });
    }
    if let Some(path) = args.get_str("faults") {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read fault plan `{path}`: {e}"))?;
        let plan =
            anycast_chaos::spec::parse_fault_plan(&text).map_err(|e| format!("`{path}`: {e}"))?;
        config = config.with_faults(plan);
    }
    // Validate placement early with a clear message.
    for n in config.group_members.iter().chain(&config.sources) {
        if !topo.contains_node(*n) {
            return Err(format!(
                "{n} is not a node of the topology ({} nodes)",
                topo.node_count()
            ));
        }
    }
    Ok((topo, config))
}

fn print_metrics(m: &anycast_dac::experiment::Metrics) {
    println!("system                {}", m.label);
    println!("lambda                {:.3} flows/s", m.lambda);
    println!("seed                  {}", m.seed);
    println!("offered               {}", m.offered);
    println!("admitted              {}", m.admitted);
    println!(
        "admission probability {:.6} ± {:.6}",
        m.admission_probability, m.ap_ci95
    );
    println!("mean tries/request    {:.4}", m.mean_tries);
    println!("messages/request      {:.2}", m.messages_per_request);
    println!("mean active flows     {:.1}", m.mean_active_flows);
    println!("network utilization   {:.4}", m.mean_network_utilization);
    println!("availability          {:.6}", m.availability);
    if m.outages > 0 || m.flows_killed_by_failure > 0 || m.orphaned_reservations > 0 {
        println!("outages completed     {}", m.outages);
        println!("mean recovery         {:.1} s", m.mean_recovery_secs);
        println!("flows killed by fault {}", m.flows_killed_by_failure);
        println!(
            "orphaned reservations {} ({} reclaimed)",
            m.orphaned_reservations, m.orphans_reclaimed
        );
        println!("leaked bandwidth      {} bps", m.leaked_bandwidth_bps);
    }
    for (g, shares) in m.member_share.iter().enumerate() {
        let pretty: Vec<String> = shares.iter().map(|s| format!("{s:.3}")).collect();
        println!("member share (g{g})     [{}]", pretty.join(", "));
    }
}

/// Parses the shared `--reps`/`--jobs` pair and derives the replication
/// seed list: one run per substream of the base seed, so the set of seeds
/// is a pure function of `(--seed, --reps)` and never of scheduling.
///
/// `--reps 1` (the default) runs the base seed itself, so single runs are
/// byte-identical to the pre-`--reps` CLI.
fn replication_plan(args: &mut Args, base_seed: u64) -> Result<(Vec<u64>, usize), String> {
    let reps: usize = args.get_or("reps", 1)?;
    if reps == 0 {
        return Err("--reps must be at least 1".to_string());
    }
    let jobs: usize = args.get_or("jobs", default_jobs())?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".to_string());
    }
    let seeds = if reps == 1 {
        vec![base_seed]
    } else {
        (0..reps as u64)
            .map(|i| SimRng::substream_seed(base_seed, i))
            .collect()
    };
    Ok((seeds, jobs))
}

/// `anycast simulate`.
pub fn simulate(raw: Vec<String>) -> Result<(), String> {
    let mut args = Args::parse(raw, &[])?;
    let lambda: f64 = args.require("lambda")?;
    let (topo, config) = common_config(&mut args, lambda)?;
    let (seeds, jobs) = replication_plan(&mut args, config.seed)?;
    args.finish()?;
    if seeds.len() == 1 {
        let m = run_experiment(&topo, &config);
        print_metrics(&m);
        return Ok(());
    }
    let rep = run_grid(&topo, std::slice::from_ref(&config), &seeds, jobs)
        .pop()
        .expect("one config in, one result out");
    println!("system                {}", rep.label);
    println!("lambda                {:.3} flows/s", rep.lambda);
    println!(
        "replications          {} (substreams of seed {})",
        seeds.len(),
        config.seed
    );
    println!(
        "admission probability {:.6} ± {:.6} (stderr across reps)",
        rep.admission_probability, rep.ap_stderr
    );
    println!("mean tries/request    {:.4}", rep.mean_tries);
    println!("messages/request      {:.2}", rep.messages_per_request);
    println!("network utilization   {:.4}", rep.mean_network_utilization);
    Ok(())
}

/// `anycast sweep`.
pub fn sweep(raw: Vec<String>) -> Result<(), String> {
    let mut args = Args::parse(raw, &["no-header"])?;
    let no_header = args.switch("no-header");
    let lambdas = parse_range(
        &args
            .get_str("lambdas")
            .ok_or_else(|| "missing required flag --lambdas".to_string())?,
    )?;
    if args.get_str("lambda").is_some() {
        return Err("sweeps take --lambdas, not --lambda".to_string());
    }
    let (topo, base) = common_config(&mut args, lambdas[0])?;
    let (seeds, jobs) = replication_plan(&mut args, base.seed)?;
    args.finish()?;
    if !no_header {
        println!(
            "{:>8} {:>10} {:>8} {:>9} {:>7}",
            "lambda", "AP", "tries", "msgs/req", "util"
        );
    }
    let configs: Vec<ExperimentConfig> = lambdas
        .iter()
        .map(|&lambda| {
            let mut config = base.clone();
            config.lambda = lambda;
            config
        })
        .collect();
    let results = run_grid(&topo, &configs, &seeds, jobs);
    for (lambda, m) in lambdas.iter().zip(&results) {
        println!(
            "{:>8.2} {:>10.6} {:>8.4} {:>9.2} {:>7.4}",
            lambda,
            m.admission_probability,
            m.mean_tries,
            m.messages_per_request,
            m.mean_network_utilization
        );
    }
    Ok(())
}

/// `anycast predict`.
pub fn predict(raw: Vec<String>) -> Result<(), String> {
    let mut args = Args::parse(raw, &[])?;
    let lambda: f64 = args.require("lambda")?;
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(format!("--lambda must be positive, got {lambda}"));
    }
    let system = match args
        .get_str("system")
        .unwrap_or_else(|| "ed1".into())
        .as_str()
    {
        "ed1" => AnalyzedSystem::Ed1,
        "sp" => AnalyzedSystem::Sp,
        other => {
            return Err(format!(
                "unknown analysed system `{other}` (expected ed1 or sp)"
            ))
        }
    };
    let model = match args
        .get_str("model")
        .unwrap_or_else(|| "erlang".into())
        .as_str()
    {
        "erlang" => BlockingModel::ErlangB,
        "uaa" => BlockingModel::Uaa,
        other => {
            return Err(format!(
                "unknown blocking model `{other}` (expected erlang or uaa)"
            ))
        }
    };
    let topo = parse_topology(&args.get_str("topology").unwrap_or_else(|| "mci".into()))?;
    let mut spec = ScenarioSpec::paper_defaults(lambda);
    if let Some(group) = args.get_str("group") {
        spec.group_members = parse_id_list(&group)?
            .into_iter()
            .map(NodeId::new)
            .collect();
    }
    if let Some(sources) = args.get_str("sources") {
        spec.sources = parse_id_list(&sources)?
            .into_iter()
            .map(NodeId::new)
            .collect();
    }
    for n in spec.group_members.iter().chain(&spec.sources) {
        if !topo.contains_node(*n) {
            return Err(format!(
                "{n} is not a node of the topology ({} nodes)",
                topo.node_count()
            ));
        }
    }
    let hot: usize = args.get_or("hot", 5)?;
    args.finish()?;

    let scenario = build_scenario(&topo, &spec, system);
    let p = predict_ap(&scenario, model);
    println!("system                {system:?}");
    println!("model                 {model:?}");
    println!("lambda                {lambda:.3} flows/s");
    println!("admission probability {:.6}", p.admission_probability);
    println!(
        "fixed point           {} iterations, converged = {}",
        p.iterations, p.converged
    );
    let mut links: Vec<(usize, f64)> = p.link_blocking.iter().copied().enumerate().collect();
    links.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("hottest links:");
    for (l, b) in links.into_iter().take(hot) {
        let link = topo
            .link(LinkId::new(l as u32))
            .expect("blocking vector matches topology");
        println!(
            "  {} ({}-{}): blocking {:.6}",
            link.id(),
            link.a(),
            link.b(),
            b
        );
    }
    Ok(())
}

/// `anycast topo`.
pub fn topo(raw: Vec<String>) -> Result<(), String> {
    let mut args = Args::parse(raw, &[])?;
    let spec = args.get_str("topology").unwrap_or_else(|| "mci".into());
    args.finish()?;
    let topo = parse_topology(&spec)?;
    let m = metrics::analyze(&topo);
    println!("topology       {spec}");
    println!("nodes          {}", m.nodes);
    println!("links          {}", m.links);
    println!("mean degree    {:.3}", m.mean_degree);
    println!("degree range   {}..={}", m.min_degree, m.max_degree);
    match m.diameter {
        Some(d) => println!("diameter       {d}"),
        None => println!("diameter       (disconnected)"),
    }
    match m.mean_distance {
        Some(d) => println!("mean distance  {d:.3}"),
        None => println!("mean distance  (disconnected)"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn common_config_defaults_to_paper_setup() {
        let mut args = Args::parse(strs(&[]), &[]).unwrap();
        let (topo, config) = common_config(&mut args, 20.0).unwrap();
        assert_eq!(topo.node_count(), 19);
        assert_eq!(config.lambda, 20.0);
        assert_eq!(config.system.label(), "<WD/D+H,2>");
        assert_eq!(config.sources.len(), 9);
        assert_eq!(config.group_members.len(), 5);
    }

    #[test]
    fn non_mci_default_sources_are_non_members() {
        let mut args = Args::parse(strs(&["--topology", "ring:6", "--group", "0,3"]), &[]).unwrap();
        let (_, config) = common_config(&mut args, 5.0).unwrap();
        let sources: Vec<u32> = config.sources.iter().map(|n| n.raw()).collect();
        assert_eq!(sources, vec![1, 2, 4, 5]);
    }

    #[test]
    fn rejects_bad_common_options() {
        for (flags, needle) in [
            (vec!["--system", "bogus"], "unknown system"),
            (vec!["--burstiness", "2.5"], "burstiness"),
            (vec!["--group", "0,99"], "not a node"),
            (vec!["--r", "0"], "--r"),
        ] {
            let mut args = Args::parse(strs(&flags), &[]).unwrap();
            let err = common_config(&mut args, 10.0).unwrap_err();
            assert!(err.contains(needle), "{flags:?}: {err}");
        }
        let mut args = Args::parse(strs(&[]), &[]).unwrap();
        assert!(common_config(&mut args, -1.0).is_err());
    }

    #[test]
    fn simulate_runs_end_to_end() {
        simulate(strs(&[
            "--lambda",
            "3",
            "--system",
            "ed",
            "--warmup",
            "20",
            "--measure",
            "40",
        ]))
        .unwrap();
    }

    #[test]
    fn simulate_accepts_a_fault_plan() {
        let path = std::env::temp_dir().join("anycast_cli_faults_test.toml");
        std::fs::write(
            &path,
            "[links]\nmtbf_secs = 60.0\nmttr_secs = 20.0\n\n[control]\nteardown_loss_probability = 0.1\n",
        )
        .unwrap();
        simulate(strs(&[
            "--lambda",
            "3",
            "--system",
            "ed",
            "--warmup",
            "20",
            "--measure",
            "60",
            "--faults",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::remove_file(&path).ok();
        // Unreadable and malformed plans are rejected with context.
        let err = simulate(strs(&["--lambda", "3", "--faults", "/no/such/plan.toml"])).unwrap_err();
        assert!(err.contains("cannot read fault plan"), "{err}");
        let bad = std::env::temp_dir().join("anycast_cli_faults_bad.toml");
        std::fs::write(&bad, "[bogus]\n").unwrap();
        let err =
            simulate(strs(&["--lambda", "3", "--faults", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("unknown section"), "{err}");
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn sweep_runs_and_validates() {
        sweep(strs(&[
            "--lambdas",
            "3:6:3",
            "--system",
            "sp",
            "--warmup",
            "10",
            "--measure",
            "20",
        ]))
        .unwrap();
        assert!(sweep(strs(&["--lambdas", "3", "--lambda", "4"])).is_err());
        assert!(sweep(strs(&[])).is_err());
    }

    #[test]
    fn simulate_replications_and_jobs() {
        simulate(strs(&[
            "--lambda",
            "3",
            "--system",
            "ed",
            "--warmup",
            "10",
            "--measure",
            "20",
            "--reps",
            "2",
            "--jobs",
            "2",
        ]))
        .unwrap();
        assert!(simulate(strs(&["--lambda", "3", "--reps", "0"])).is_err());
        assert!(simulate(strs(&["--lambda", "3", "--jobs", "0"])).is_err());
    }

    #[test]
    fn sweep_accepts_jobs_and_reps() {
        sweep(strs(&[
            "--lambdas",
            "3:6:3",
            "--system",
            "sp",
            "--warmup",
            "10",
            "--measure",
            "20",
            "--reps",
            "2",
            "--jobs",
            "4",
        ]))
        .unwrap();
    }

    #[test]
    fn replication_seeds_are_substreams() {
        let mut args = Args::parse(strs(&["--reps", "3", "--jobs", "2"]), &[]).unwrap();
        let (seeds, jobs) = replication_plan(&mut args, 42).unwrap();
        assert_eq!(jobs, 2);
        assert_eq!(
            seeds,
            vec![
                SimRng::substream_seed(42, 0),
                SimRng::substream_seed(42, 1),
                SimRng::substream_seed(42, 2)
            ]
        );
        // The default keeps the base seed itself for exact compatibility.
        let mut args = Args::parse(strs(&[]), &[]).unwrap();
        let (seeds, _) = replication_plan(&mut args, 42).unwrap();
        assert_eq!(seeds, vec![42]);
    }

    #[test]
    fn predict_runs_and_validates() {
        predict(strs(&["--lambda", "20"])).unwrap();
        predict(strs(&[
            "--lambda", "20", "--system", "sp", "--model", "uaa",
        ]))
        .unwrap();
        assert!(predict(strs(&["--lambda", "20", "--system", "x"])).is_err());
        assert!(predict(strs(&["--lambda", "20", "--model", "x"])).is_err());
        assert!(predict(strs(&["--lambda", "-3"])).is_err());
        assert!(predict(strs(&["--lambda", "20", "--group", "77"])).is_err());
    }

    #[test]
    fn topo_runs_and_validates() {
        topo(strs(&[])).unwrap();
        topo(strs(&["--topology", "grid:3x3"])).unwrap();
        assert!(topo(strs(&["--topology", "grid:zz"])).is_err());
        assert!(topo(strs(&["--nope", "1"])).is_err());
    }

    #[test]
    fn unknown_flags_rejected_per_command() {
        assert!(simulate(strs(&["--lambda", "3", "--wat", "1"])).is_err());
    }
}
