//! The CLI subcommands.

use crate::args::{parse_id_list, parse_range, Args};
use crate::spec::{parse_system, parse_topology};
use anycast_analysis::scenario::{build_scenario, AnalyzedSystem, ScenarioSpec};
use anycast_analysis::{predict_ap, predict_ap_batch, BlockingModel};
use anycast_bench::{default_jobs, run_grid, run_grid_traced, TracedCell};
use anycast_dac::calibrate::CalibrationBurst;
use anycast_dac::experiment::{
    run_experiment, run_experiment_traced, ArrivalProcess, ExperimentConfig, SignalingMode,
    SystemSpec, TwoPhaseConfig,
};
use anycast_dac::online::record_arrivals;
use anycast_dac::BackoffPolicy;
use anycast_daemon::{
    install_signal_handler, replay_trace, write_trace, BoundServer, Endpoint, ReplayPacing,
    ServeOptions, ShutdownFlag,
};
use anycast_estimator::{CalibrationOptions, Estimator};
use anycast_net::{metrics, LinkId, NodeId, RouteMode, Topology};
use anycast_sim::SimRng;
use anycast_telemetry::export::{to_csv, to_jsonl};
use anycast_telemetry::{
    json, registry_from_events, Event as TelemetryEvent, MetricsRegistry, NullRecorder, SkipReason,
    StreamRecorder, TelemetryMode, DEFAULT_RING_CAPACITY,
};

/// Prints usage for a command (or the overview for anything else).
pub fn print_help(command: &str) {
    match command {
        "simulate" => println!(
            "usage: anycast simulate --lambda RATE [options]\n\
             \n\
             Runs one closed-loop admission-control simulation.\n\
             \n\
             options:\n\
             \x20 --system ed|wddh|wddb|sp|gdi   admission system (default wddh)\n\
             \x20 --r N                          retrial limit (default 2)\n\
             \x20 --alpha X                      WD/D+H damping in [0,1] (default 0.5)\n\
             \x20 --multipath K                  K shortest routes per member (default 1)\n\
             \x20 --topology SPEC                mci | grid:WxH | ring:N | star:N |\n\
             \x20                                waxman:N:SEED | fat_tree:K |\n\
             \x20                                clos:SPINE:LEAF:HOSTS |\n\
             \x20                                <edge-list file> (default mci)\n\
             \x20 --route-mode MODE              table (precompute all routes up front,\n\
             \x20                                default) | oracle (compute on demand\n\
             \x20                                through a bounded per-source cache;\n\
             \x20                                results are bit-identical)\n\
             \x20 --route-cache N                oracle cache capacity in source entries\n\
             \x20                                (default 4096; implies --route-mode oracle)\n\
             \x20 --group IDS                    comma-separated member routers (default 0,4,8,12,16)\n\
             \x20 --sources IDS                  comma-separated source routers (default: odd\n\
             \x20                                routers on mci, all non-members elsewhere)\n\
             \x20 --seed N                       PRNG seed (default 1)\n\
             \x20 --reps N                       independent replications; seeds are RNG\n\
             \x20                                substreams of --seed (default 1)\n\
             \x20 --jobs N                       worker threads for replications/sweep\n\
             \x20                                points, and with --batch also for the\n\
             \x20                                in-batch candidate evaluation fan-out\n\
             \x20                                (default: available cores; results are\n\
             \x20                                bit-identical for every N)\n\
             \x20 --warmup SECS                  warm-up period (default 1800)\n\
             \x20 --measure SECS                 measured period (default 3600)\n\
             \x20 --burstiness B                 MMPP-2 burstiness in [1,2) (default: Poisson)\n\
             \x20 --faults FILE                  fault-plan spec (TOML subset; see\n\
             \x20                                anycast-chaos::spec for the grammar)\n\
             \x20 --telemetry                    attach the ring recorder and print an\n\
             \x20                                event summary (results are unchanged)\n\
             \x20 --batch                        batched same-quantum admission: drain\n\
             \x20                                arrivals sharing the event-queue quantum\n\
             \x20                                and evaluate them against one sharded\n\
             \x20                                link-state snapshot, fanned across --jobs\n\
             \x20                                workers (results are bit-identical)\n\
             \x20 --signaling-delay SECS         per-hop signalling latency; switches the\n\
             \x20                                DAC engine to two-phase PATH/RESV setup\n\
             \x20                                with pending holds (0 = atomic-identical)\n\
             \x20 --setup-timeout SECS           source-side setup timer before a timed-out\n\
             \x20                                attempt is retransmitted or failed\n\
             \x20                                (default 1.0; `inf` disables)\n\
             \x20 --backoff R:BASE:MULT:CAP      bounded exponential retransmit backoff:\n\
             \x20                                R retransmits, BASE·MULT^n capped at CAP\n\
             \x20                                seconds (default 3:0.1:2:2; optional\n\
             \x20                                fifth :JITTER field in [0,1))"
        ),
        "sweep" => println!(
            "usage: anycast sweep --lambdas START:END:STEP [simulate options]\n\
             \n\
             Runs a λ sweep and prints one row per rate. Takes the same\n\
             options as `simulate`, with --lambdas replacing --lambda;\n\
             --no-header omits the column header for scripting.\n\
             Sweep points run on --jobs worker threads (default: available\n\
             cores); output is bit-identical for every --jobs value.\n\
             --telemetry attaches the ring recorder and appends an event\n\
             summary (results are unchanged)."
        ),
        "trace" => println!(
            "usage: anycast trace [SCENARIO] [simulate options] [options]\n\
             \n\
             Runs a scenario with structured tracing on and exports every\n\
             event (arrivals, probes, retrials, setups, teardowns,\n\
             rejections with full decision traces, link samples, faults)\n\
             for offline analysis. Results are bit-identical to the same\n\
             run without tracing.\n\
             \n\
             scenarios:\n\
             \x20 paper       λ=35, WD/D+H — the paper's Figure 6 operating point\n\
             \x20 saturated   λ=50, ED — overload, dense rejection traces (default)\n\
             \x20 light       λ=5, WD/D+H — low load, mostly clean admissions\n\
             \n\
             options (plus all `simulate` options):\n\
             \x20 --out DIR                      output directory (default traces)\n\
             \x20 --format jsonl|csv|both        export format (default jsonl)\n\
             \x20 --sample SECS                  link-state sampling interval (default 60)\n\
             \x20 --events N                     ring capacity in events (default 2^20)\n\
             \x20 --check                        re-parse every exported JSONL line\n\
             \x20 --stream PATH                  stream events to PATH as JSONL while the\n\
             \x20                                run executes (constant memory; single\n\
             \x20                                replication; bypasses --out/--format)\n\
             \n\
             Writes trace_<scenario>_seed<seed>.jsonl (one JSON object per\n\
             line) per replication plus metrics.json (the labelled metrics\n\
             registry), and prints the first rejection's decision trace."
        ),
        "record" => println!(
            "usage: anycast record --lambda RATE --out PATH [simulate options]\n\
             \n\
             Draws a config's complete arrival process (every arrival with\n\
             its source, group, demand and holding time) and writes it as a\n\
             replayable JSONL trace — one header line of provenance (seed,\n\
             rate, bounds, horizon), then one line per arrival. No\n\
             admission control runs. Replaying the trace with the same\n\
             config reproduces the offline run bit-identically.\n\
             \n\
             options (plus all `simulate` options):\n\
             \x20 --out PATH                     trace file (default trace.jsonl)"
        ),
        "replay" => println!(
            "usage: anycast replay --trace PATH --lambda RATE [simulate options] [options]\n\
             \n\
             Feeds a recorded arrival trace through the online admission\n\
             engine. With the config the trace was recorded from, a\n\
             virtual-time replay is bit-identical to `simulate` — metrics\n\
             go to stdout in exactly `simulate`'s format (auxiliary lines\n\
             to stderr) so the two outputs diff clean.\n\
             \n\
             options (plus all `simulate` options):\n\
             \x20 --trace PATH                   trace file from `anycast record`\n\
             \x20 --speed X                      pace against a wall clock at X\n\
             \x20                                simulated seconds per real second\n\
             \x20                                (default: virtual time, no waiting;\n\
             \x20                                results are identical either way)\n\
             \x20 --jobs N                       with --batch, worker threads for the\n\
             \x20                                in-batch candidate evaluation (default:\n\
             \x20                                available cores; results are\n\
             \x20                                bit-identical for every N)\n\
             \x20 --stream PATH                  stream telemetry events to PATH as\n\
             \x20                                JSONL while the replay executes"
        ),
        "serve" => println!(
            "usage: anycast serve (--listen ADDR | --unix PATH) [simulate options] [options]\n\
             \n\
             Runs the admission controller as a long-lived daemon speaking\n\
             line-delimited JSON (one request per line):\n\
             \n\
             \x20 {{\"op\":\"admit\",\"source\":2,\"group\":0,\"demand_bps\":64000,\"holding_secs\":120,\"token\":\"t1\"}}\n\
             \x20 {{\"op\":\"teardown\",\"session\":7}}\n\
             \x20 {{\"op\":\"resume\",\"token\":\"t1\"}}\n\
             \x20 {{\"op\":\"stats\"}}\n\
             \x20 {{\"op\":\"shutdown\"}}\n\
             \n\
             Decisions come back per connection, correlated by request id\n\
             and optional client token (out of order under asynchronous\n\
             two-phase signalling). Under overload the daemon answers\n\
             `overloaded` instead of queueing without bound; malformed or\n\
             overlong lines draw an `error` with a reason code and the\n\
             offending line echoed. SIGINT/SIGTERM or a shutdown request\n\
             drains in-flight work, rejects queued-but-unserved admits\n\
             with `shutting_down`, releases pending holds and prints\n\
             final metrics. The service lifetime is the config horizon\n\
             (--warmup + --measure; a service typically wants --warmup 0)\n\
             unless --window puts it in rolling mode.\n\
             \n\
             options (plus all `simulate` options):\n\
             \x20 --listen ADDR                  TCP listen address (port 0 = any)\n\
             \x20 --unix PATH                    Unix-domain socket path instead\n\
             \x20 --speed X                      simulated seconds per real second\n\
             \x20                                (default 1 = real time)\n\
             \x20 --tick-ms MS                   idle engine tick (default 5)\n\
             \x20 --stream PATH                  stream live telemetry to PATH as\n\
             \x20                                JSONL (drop-newest backpressure)\n\
             \x20 --window SECS                  rolling-horizon mode: serve forever,\n\
             \x20                                stats report a trailing SECS window\n\
             \x20 --queue-limit N                admission queue bound; shed\n\
             \x20                                watermarks scale with it (default 1024)\n\
             \x20 --no-shed                      disable the hysteresis shed controller\n\
             \x20                                (the hard queue bound still refuses\n\
             \x20                                admits when full)"
        ),
        "predict" => println!(
            "usage: anycast predict --lambda RATE | --lambdas START:END:STEP [options]\n\
             \n\
             Predicts admission probability without a full simulation: either\n\
             the Appendix-A analytical model (--system ed1|sp) or the\n\
             burst-calibrated link-decomposition estimator\n\
             (--system ed|wddh|wddb|gdi), batched over the whole λ grid.\n\
             \n\
             options:\n\
             \x20 --system NAME                  ed1|sp (analytic, default ed1) or\n\
             \x20                                ed|wddh|wddb|gdi (calibrated estimator)\n\
             \x20 --model erlang|uaa             link-blocking model (analytic only,\n\
             \x20                                default erlang)\n\
             \x20 --jobs N                       worker threads for calibration bursts\n\
             \x20                                and the λ-grid fan-out (default:\n\
             \x20                                available cores; results are\n\
             \x20                                bit-identical for every N)\n\
             \x20 --topology SPEC                as in `simulate`\n\
             \x20 --group IDS / --sources IDS    as in `simulate`\n\
             \x20 --hot N                        list the N hottest links (default 5)\n\
             \n\
             estimator options (--system ed|wddh|wddb|gdi):\n\
             \x20 --r N                          retrial limit (default 2)\n\
             \x20 --alpha X                      WD/D+H damping in [0,1] (default 0.5)\n\
             \x20 --anchors RANGE                calibration anchor λs (default 5:50:15)\n\
             \x20 --seed N                       calibration burst seed\n\
             \x20 --calib-warmup SECS            burst warm-up, compressed simulated\n\
             \x20                                seconds (default 90)\n\
             \x20 --calib-measure SECS           burst measured period (default 60)\n\
             \x20 --compression C                time-compression factor >= 1: bursts\n\
             \x20                                run at λ·C with holding time T/C, same\n\
             \x20                                offered load (default 6)"
        ),
        "topo" => println!(
            "usage: anycast topo [--topology SPEC]\n\
             \n\
             Prints structural metrics of a topology."
        ),
        _ => println!(
            "anycast — distributed admission control for anycast flows (ICDCS 2001)\n\
             \n\
             commands:\n\
             \x20 simulate   run one closed-loop simulation\n\
             \x20 sweep      run a λ sweep of simulations\n\
             \x20 trace      run a scenario with structured tracing and export events\n\
             \x20 record     dump a scenario's arrival process as a replayable trace\n\
             \x20 replay     feed a recorded trace through the online engine\n\
             \x20 serve      run the admission controller as a live daemon\n\
             \x20 predict    analytical admission probability (Appendix A)\n\
             \x20 topo       topology structure report\n\
             \x20 help       this overview\n\
             \n\
             `anycast <command> --help` shows per-command options."
        ),
    }
}

/// Builds the topology and experiment configuration shared by `simulate`,
/// `sweep` and `trace` from the common option set. `default_system` is
/// the system used when `--system` is absent (commands differ: trace
/// presets pick their own).
fn common_config(
    args: &mut Args,
    lambda: f64,
    default_system: &str,
) -> Result<(Topology, ExperimentConfig), String> {
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(format!("arrival rate must be positive, got {lambda}"));
    }
    let system_name = args
        .get_str("system")
        .unwrap_or_else(|| default_system.into());
    let r: u32 = args.get_or("r", 2)?;
    let alpha: f64 = args.get_or("alpha", 0.5)?;
    let multipath: usize = args.get_or("multipath", 1)?;
    let system = parse_system(&system_name, r, alpha, multipath)?;
    let topo_spec = args.get_str("topology").unwrap_or_else(|| "mci".into());
    let topo = parse_topology(&topo_spec)?;

    let mut config = ExperimentConfig::paper_defaults(lambda, system)
        .with_seed(args.get_or("seed", 1)?)
        .with_warmup_secs(args.get_or("warmup", 1_800.0)?)
        .with_measure_secs(args.get_or("measure", 3_600.0)?);
    if let Some(group) = args.get_str("group") {
        config = config.with_group(
            parse_id_list(&group)?
                .into_iter()
                .map(NodeId::new)
                .collect(),
        );
    }
    if let Some(sources) = args.get_str("sources") {
        config = config.with_sources(
            parse_id_list(&sources)?
                .into_iter()
                .map(NodeId::new)
                .collect(),
        );
    } else if topo_spec != "mci" {
        // The paper's odd-router default only makes sense on the MCI
        // backbone; elsewhere default to every non-member node.
        let members: std::collections::BTreeSet<u32> =
            config.group_members.iter().map(|n| n.raw()).collect();
        config = config.with_sources(
            topo.nodes()
                .filter(|n| !members.contains(&n.raw()))
                .collect(),
        );
        if config.sources.is_empty() {
            return Err("every node is a group member; no sources remain".to_string());
        }
    }
    if args.switch("batch") {
        config = config.with_batching(true);
    }
    // Route resolution: the precomputed table (default) or the on-demand
    // oracle. Purely an execution knob — results are bit-identical.
    let route_mode = args.get_str("route-mode");
    let route_cache = args.get_str("route-cache");
    match route_mode.as_deref() {
        None | Some("table") => {
            if let Some(raw) = &route_cache {
                if route_mode.is_some() {
                    return Err("--route-cache applies only to --route-mode oracle".to_string());
                }
                // --route-cache alone implies the oracle.
                let capacity: usize = raw
                    .parse()
                    .map_err(|e| format!("--route-cache: cannot parse `{raw}`: {e}"))?;
                if capacity == 0 {
                    return Err("--route-cache must be at least 1".to_string());
                }
                config = config.with_routing(RouteMode::OnDemand { capacity });
            }
        }
        Some("oracle") => {
            let mode = match &route_cache {
                None => RouteMode::on_demand(),
                Some(raw) => {
                    let capacity: usize = raw
                        .parse()
                        .map_err(|e| format!("--route-cache: cannot parse `{raw}`: {e}"))?;
                    if capacity == 0 {
                        return Err("--route-cache must be at least 1".to_string());
                    }
                    RouteMode::OnDemand { capacity }
                }
            };
            config = config.with_routing(mode);
        }
        Some(other) => {
            return Err(format!(
                "unknown route mode `{other}` (expected table or oracle)"
            ))
        }
    }
    if let Some(b) = args.get_str("burstiness") {
        let burstiness: f64 = b
            .parse()
            .map_err(|e| format!("--burstiness: cannot parse `{b}`: {e}"))?;
        if !(1.0..2.0).contains(&burstiness) {
            return Err(format!("--burstiness must lie in [1, 2), got {burstiness}"));
        }
        config = config.with_arrivals(ArrivalProcess::Bursty {
            burstiness,
            mean_sojourn_secs: 60.0,
        });
    }
    if let Some(path) = args.get_str("faults") {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read fault plan `{path}`: {e}"))?;
        let plan =
            anycast_chaos::spec::parse_fault_plan(&text).map_err(|e| format!("`{path}`: {e}"))?;
        config = config.with_faults(plan);
    }
    // Two-phase signalling: any of the three flags switches the engine
    // from atomic to latency-aware two-phase mode.
    let signaling_delay = args.get_str("signaling-delay");
    let setup_timeout = args.get_str("setup-timeout");
    let backoff = args.get_str("backoff");
    if signaling_delay.is_some() || setup_timeout.is_some() || backoff.is_some() {
        if !matches!(config.system, SystemSpec::Dac { .. }) {
            return Err(format!(
                "two-phase signalling flags require a DAC system \
                 (--system ed|wddh|wddb without --multipath), got {}",
                config.system.label()
            ));
        }
        let mut tp = TwoPhaseConfig::default();
        if let Some(raw) = signaling_delay {
            let delay: f64 = raw
                .parse()
                .map_err(|e| format!("--signaling-delay: cannot parse `{raw}`: {e}"))?;
            if !(delay.is_finite() && delay >= 0.0) {
                return Err(format!(
                    "--signaling-delay must be non-negative seconds, got {raw}"
                ));
            }
            tp.per_hop_delay_secs = delay;
        }
        if let Some(raw) = setup_timeout {
            let timeout = if raw == "inf" {
                f64::INFINITY
            } else {
                raw.parse()
                    .map_err(|e| format!("--setup-timeout: cannot parse `{raw}`: {e}"))?
            };
            // NaN parses; the comparison must also reject it.
            if timeout.is_nan() || timeout <= 0.0 {
                return Err(format!(
                    "--setup-timeout must be positive seconds (or `inf`), got {raw}"
                ));
            }
            tp.setup_timeout_secs = timeout;
        }
        if let Some(raw) = backoff {
            tp.backoff = parse_backoff(&raw)?;
        }
        config = config.with_signaling(SignalingMode::TwoPhase(tp));
    }
    // Validate placement early with a clear message.
    for n in config.group_members.iter().chain(&config.sources) {
        if !topo.contains_node(*n) {
            return Err(format!(
                "{n} is not a node of the topology ({} nodes)",
                topo.node_count()
            ));
        }
    }
    Ok((topo, config))
}

/// Parses `--backoff RETRANSMITS:BASE:MULT:CAP[:JITTER]` into a
/// [`BackoffPolicy`]. Omitted jitter keeps the default fraction.
fn parse_backoff(raw: &str) -> Result<BackoffPolicy, String> {
    let parts: Vec<&str> = raw.split(':').collect();
    if !(parts.len() == 4 || parts.len() == 5) {
        return Err(format!(
            "--backoff `{raw}` must be RETRANSMITS:BASE:MULT:CAP[:JITTER]"
        ));
    }
    let mut policy = BackoffPolicy {
        max_retransmits: parts[0]
            .parse()
            .map_err(|e| format!("--backoff retransmits `{}`: {e}", parts[0]))?,
        base_secs: parts[1]
            .parse()
            .map_err(|e| format!("--backoff base `{}`: {e}", parts[1]))?,
        multiplier: parts[2]
            .parse()
            .map_err(|e| format!("--backoff multiplier `{}`: {e}", parts[2]))?,
        max_backoff_secs: parts[3]
            .parse()
            .map_err(|e| format!("--backoff cap `{}`: {e}", parts[3]))?,
        ..BackoffPolicy::default()
    };
    if let Some(jitter) = parts.get(4) {
        policy.jitter_frac = jitter
            .parse()
            .map_err(|e| format!("--backoff jitter `{jitter}`: {e}"))?;
    }
    let valid = policy.base_secs.is_finite()
        && policy.base_secs >= 0.0
        && policy.multiplier.is_finite()
        && policy.multiplier >= 1.0
        && policy.max_backoff_secs.is_finite()
        && policy.max_backoff_secs >= 0.0
        && policy.jitter_frac.is_finite()
        && (0.0..1.0).contains(&policy.jitter_frac);
    if !valid {
        return Err(format!(
            "--backoff `{raw}`: base and cap must be non-negative, \
             multiplier at least 1, jitter in [0, 1)"
        ));
    }
    Ok(policy)
}

fn print_metrics(m: &anycast_dac::experiment::Metrics) {
    println!("system                {}", m.label);
    println!("lambda                {:.3} flows/s", m.lambda);
    println!("seed                  {}", m.seed);
    println!("offered               {}", m.offered);
    println!("admitted              {}", m.admitted);
    println!(
        "admission probability {:.6} ± {:.6}",
        m.admission_probability, m.ap_ci95
    );
    println!("mean tries/request    {:.4}", m.mean_tries);
    println!("messages/request      {:.2}", m.messages_per_request);
    println!("mean active flows     {:.1}", m.mean_active_flows);
    println!("network utilization   {:.4}", m.mean_network_utilization);
    println!("availability          {:.6}", m.availability);
    if m.outages > 0 || m.flows_killed_by_failure > 0 || m.orphaned_reservations > 0 {
        println!("outages completed     {}", m.outages);
        println!("mean recovery         {:.1} s", m.mean_recovery_secs);
        println!("flows killed by fault {}", m.flows_killed_by_failure);
        println!(
            "orphaned reservations {} ({} reclaimed)",
            m.orphaned_reservations, m.orphans_reclaimed
        );
        println!("leaked bandwidth      {} bps", m.leaked_bandwidth_bps);
    }
    if m.holds_placed > 0 || m.setups_completed > 0 {
        println!("setups completed      {}", m.setups_completed);
        println!("mean setup latency    {:.4} s", m.mean_setup_latency_secs);
        println!(
            "holds placed          {} ({} expired)",
            m.holds_placed, m.holds_expired
        );
        println!("retransmits           {}", m.retransmits);
        println!("signaling msgs lost   {}", m.signaling_messages_lost);
        println!("leaked holds          {} bps", m.leaked_hold_bps);
    }
    for (g, shares) in m.member_share.iter().enumerate() {
        let pretty: Vec<String> = shares.iter().map(|s| format!("{s:.3}")).collect();
        println!("member share (g{g})     [{}]", pretty.join(", "));
    }
}

/// Parses the shared `--reps`/`--jobs` pair and derives the replication
/// seed list: one run per substream of the base seed, so the set of seeds
/// is a pure function of `(--seed, --reps)` and never of scheduling.
///
/// `--reps 1` (the default) runs the base seed itself, so single runs are
/// byte-identical to the pre-`--reps` CLI.
fn replication_plan(args: &mut Args, base_seed: u64) -> Result<(Vec<u64>, usize), String> {
    let reps: usize = args.get_or("reps", 1)?;
    if reps == 0 {
        return Err("--reps must be at least 1".to_string());
    }
    let jobs: usize = args.get_or("jobs", default_jobs())?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".to_string());
    }
    let seeds = if reps == 1 {
        vec![base_seed]
    } else {
        (0..reps as u64)
            .map(|i| SimRng::substream_seed(base_seed, i))
            .collect()
    };
    Ok((seeds, jobs))
}

/// Applies the shared `--jobs` worker count to the in-batch candidate
/// evaluation fan-out when batching is on. Purely an execution knob:
/// results are bit-identical for every worker count.
fn with_batch_workers(config: ExperimentConfig, jobs: usize) -> ExperimentConfig {
    if config.batch {
        config.with_batch_jobs(jobs)
    } else {
        config
    }
}

fn print_replicated(rep: &anycast_bench::ReplicatedMetrics, reps: usize, base_seed: u64) {
    println!("system                {}", rep.label);
    println!("lambda                {:.3} flows/s", rep.lambda);
    println!("replications          {reps} (substreams of seed {base_seed})");
    println!(
        "admission probability {:.6} ± {:.6} (stderr across reps)",
        rep.admission_probability, rep.ap_stderr
    );
    println!("mean tries/request    {:.4}", rep.mean_tries);
    println!("messages/request      {:.2}", rep.messages_per_request);
    println!("network utilization   {:.4}", rep.mean_network_utilization);
}

/// One-line recap of what a ring recorder captured across the run's cells.
fn print_telemetry_summary(cells: &[TracedCell]) {
    let total: usize = cells.iter().map(|c| c.events.len()).sum();
    let mut setups = 0usize;
    let mut rejections = 0usize;
    for cell in cells {
        for ev in &cell.events {
            match ev.event.kind() {
                "setup" => setups += 1,
                "rejection" => rejections += 1,
                _ => {}
            }
        }
    }
    println!(
        "telemetry             {total} events captured ({setups} setups, {rejections} rejections)"
    );
}

/// `anycast simulate`.
pub fn simulate(raw: Vec<String>) -> Result<(), String> {
    let mut args = Args::parse(raw, &["telemetry", "batch"])?;
    let telemetry = args.switch("telemetry");
    let lambda: f64 = args.require("lambda")?;
    let (topo, config) = common_config(&mut args, lambda, "wddh")?;
    let (seeds, jobs) = replication_plan(&mut args, config.seed)?;
    args.finish()?;
    let config = with_batch_workers(config, jobs);
    if telemetry {
        let (mut summaries, cells) = run_grid_traced(
            &topo,
            std::slice::from_ref(&config),
            &seeds,
            jobs,
            TelemetryMode::ring(),
        );
        let rep = summaries.pop().expect("one config in, one result out");
        if seeds.len() == 1 {
            print_metrics(&cells[0].metrics);
        } else {
            print_replicated(&rep, seeds.len(), config.seed);
        }
        print_telemetry_summary(&cells);
        return Ok(());
    }
    if seeds.len() == 1 {
        let m = run_experiment(&topo, &config);
        print_metrics(&m);
        return Ok(());
    }
    let rep = run_grid(&topo, std::slice::from_ref(&config), &seeds, jobs)
        .pop()
        .expect("one config in, one result out");
    print_replicated(&rep, seeds.len(), config.seed);
    Ok(())
}

/// `anycast sweep`.
pub fn sweep(raw: Vec<String>) -> Result<(), String> {
    let mut args = Args::parse(raw, &["no-header", "telemetry", "batch"])?;
    let no_header = args.switch("no-header");
    let telemetry = args.switch("telemetry");
    let lambdas = parse_range(
        &args
            .get_str("lambdas")
            .ok_or_else(|| "missing required flag --lambdas".to_string())?,
    )?;
    if args.get_str("lambda").is_some() {
        return Err("sweeps take --lambdas, not --lambda".to_string());
    }
    let (topo, base) = common_config(&mut args, lambdas[0], "wddh")?;
    let (seeds, jobs) = replication_plan(&mut args, base.seed)?;
    args.finish()?;
    let base = with_batch_workers(base, jobs);
    if !no_header {
        println!(
            "{:>8} {:>10} {:>8} {:>9} {:>7}",
            "lambda", "AP", "tries", "msgs/req", "util"
        );
    }
    let configs: Vec<ExperimentConfig> = lambdas
        .iter()
        .map(|&lambda| {
            let mut config = base.clone();
            config.lambda = lambda;
            config
        })
        .collect();
    let (results, cells) = if telemetry {
        let (results, cells) =
            run_grid_traced(&topo, &configs, &seeds, jobs, TelemetryMode::ring());
        (results, Some(cells))
    } else {
        (run_grid(&topo, &configs, &seeds, jobs), None)
    };
    for (lambda, m) in lambdas.iter().zip(&results) {
        println!(
            "{:>8.2} {:>10.6} {:>8.4} {:>9.2} {:>7.4}",
            lambda,
            m.admission_probability,
            m.mean_tries,
            m.messages_per_request,
            m.mean_network_utilization
        );
    }
    if let Some(cells) = cells {
        print_telemetry_summary(&cells);
    }
    Ok(())
}

/// `anycast trace`: run a preset (or customised) scenario with the ring
/// recorder attached and export the event stream for offline analysis.
pub fn trace(raw: Vec<String>) -> Result<(), String> {
    // The optional scenario preset is the one positional argument in the
    // CLI; peel it off before the flag parser (which rejects positionals).
    let mut raw = raw;
    let scenario = if raw.first().is_some_and(|a| !a.starts_with("--")) {
        raw.remove(0)
    } else {
        "saturated".to_string()
    };
    let (preset_lambda, preset_system) = match scenario.as_str() {
        // The paper's Figure 6 operating point, default multi-destination
        // policy.
        "paper" => (35.0, "wddh"),
        // Overload: plenty of rejections, so decision traces are dense.
        "saturated" => (50.0, "ed"),
        // Low load: mostly clean admissions and departures.
        "light" => (5.0, "wddh"),
        other => {
            return Err(format!(
                "unknown trace scenario `{other}` (expected paper, saturated or light)"
            ))
        }
    };
    let mut args = Args::parse(raw, &["check", "batch"])?;
    let check = args.switch("check");
    let lambda: f64 = args.get_or("lambda", preset_lambda)?;
    let (topo, config) = common_config(&mut args, lambda, preset_system)?;
    let (seeds, jobs) = replication_plan(&mut args, config.seed)?;
    let config = with_batch_workers(config, jobs);
    let out_dir = args.get_str("out").unwrap_or_else(|| "traces".into());
    let sample: f64 = args.get_or("sample", 60.0)?;
    if !(sample.is_finite() && sample > 0.0) {
        return Err(format!("--sample must be positive seconds, got {sample}"));
    }
    let format = args.get_str("format").unwrap_or_else(|| "jsonl".into());
    let (want_jsonl, want_csv) = match format.as_str() {
        "jsonl" => (true, false),
        "csv" => (false, true),
        "both" => (true, true),
        other => {
            return Err(format!(
                "--format must be jsonl, csv or both, got `{other}`"
            ))
        }
    };
    let capacity: usize = args.get_or("events", DEFAULT_RING_CAPACITY)?;
    if capacity == 0 {
        return Err("--events must be at least 1".to_string());
    }
    let stream_path = args.get_str("stream");
    args.finish()?;

    if let Some(path) = stream_path {
        // Constant-memory export: events go straight to the JSONL file as
        // they happen instead of through the in-memory ring, so the run
        // length is bounded by disk, not by --events.
        if seeds.len() != 1 {
            return Err("--stream exports a single replication; drop --reps".to_string());
        }
        let mut rec = StreamRecorder::create_default(std::path::Path::new(&path), seeds[0])
            .map_err(|e| format!("cannot create stream file `{path}`: {e}"))?
            .with_sample_interval(sample);
        let m = run_experiment_traced(&topo, &config, &mut rec);
        let lines = rec
            .finish()
            .map_err(|e| format!("stream writer for `{path}`: {e}"))?;
        println!("scenario              {scenario}");
        print_metrics(&m);
        println!("streamed              {lines} events");
        println!("wrote                 {path}");
        return Ok(());
    }

    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create output directory `{out_dir}`: {e}"))?;
    let mode = TelemetryMode::Ring {
        sample_interval_secs: Some(sample),
        capacity,
    };
    let (_, cells) = run_grid_traced(&topo, std::slice::from_ref(&config), &seeds, jobs, mode);

    let label = config.system.label();
    let mut registry = MetricsRegistry::new();
    let mut written: Vec<String> = Vec::new();
    let mut first_rejection: Option<(u64, f64, TelemetryEvent)> = None;
    for cell in &cells {
        registry.merge(&registry_from_events(&label, &cell.events));
        if first_rejection.is_none() {
            first_rejection = cell
                .events
                .iter()
                .find(|e| matches!(e.event, TelemetryEvent::Rejection { .. }))
                .map(|e| (cell.seed, e.time_secs, e.event.clone()));
        }
        let stem = format!("{out_dir}/trace_{scenario}_seed{}", cell.seed);
        if want_jsonl {
            let path = format!("{stem}.jsonl");
            let text = to_jsonl(cell.seed, &cell.events);
            if check {
                for (i, line) in text.lines().enumerate() {
                    json::parse(line)
                        .map_err(|e| format!("{path}: line {} is not valid JSON: {e}", i + 1))?;
                }
            }
            std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            written.push(path);
        }
        if want_csv {
            let path = format!("{stem}.csv");
            std::fs::write(&path, to_csv(cell.seed, &cell.events))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            written.push(path);
        }
    }
    let metrics_path = format!("{out_dir}/metrics.json");
    std::fs::write(&metrics_path, registry.to_json().render() + "\n")
        .map_err(|e| format!("cannot write {metrics_path}: {e}"))?;
    written.push(metrics_path);

    println!("scenario              {scenario}");
    println!("system                {label}");
    println!("lambda                {lambda:.3} flows/s");
    println!("runs                  {}", cells.len());
    print_telemetry_summary(&cells);
    for path in &written {
        println!("wrote                 {path}");
    }
    match first_rejection {
        None => println!("no rejections in this trace (try `saturated` or a higher --lambda)"),
        Some((
            seed,
            t,
            TelemetryEvent::Rejection {
                request,
                tries,
                trace,
            },
        )) => {
            println!(
                "first rejection       request {request} (seed {seed}, t={t:.2}s, {tries} tries)"
            );
            let weights: Vec<String> = trace.weights.iter().map(|w| format!("{w:.4}")).collect();
            println!("  weights             [{}]", weights.join(", "));
            for step in &trace.steps {
                match step.skip {
                    SkipReason::LinkBlocked {
                        link,
                        hop_index,
                        available_bps,
                    } => println!(
                        "  member {} (w={:.4})  link_blocked at {link} hop {hop_index}, {available_bps} bps free",
                        step.member_index, step.weight
                    ),
                    SkipReason::NoFeasiblePath => println!(
                        "  member {} (w={:.4})  no_feasible_path",
                        step.member_index, step.weight
                    ),
                    SkipReason::NotSelected => println!(
                        "  member {} (w={:.4})  not_selected",
                        step.member_index, step.weight
                    ),
                }
            }
        }
        Some(_) => unreachable!("first_rejection only holds Rejection events"),
    }
    Ok(())
}

/// `anycast record`: draw a config's complete arrival process and write
/// it as a replayable JSONL trace. No admission control runs.
pub fn record(raw: Vec<String>) -> Result<(), String> {
    let mut args = Args::parse(raw, &["batch"])?;
    let lambda: f64 = args.require("lambda")?;
    let (_topo, config) = common_config(&mut args, lambda, "wddh")?;
    let out = args.get_str("out").unwrap_or_else(|| "trace.jsonl".into());
    args.finish()?;
    let arrivals = record_arrivals(&config);
    let written = write_trace(std::path::Path::new(&out), &config, &arrivals)
        .map_err(|e| format!("cannot write trace `{out}`: {e}"))?;
    println!("seed                  {}", config.seed);
    println!("lambda                {:.3} flows/s", config.lambda);
    println!(
        "horizon               {:.1} s",
        config.warmup_secs + config.measure_secs
    );
    println!("arrivals              {written}");
    println!("wrote                 {out}");
    Ok(())
}

/// `anycast replay`: feed a recorded trace through the online engine.
/// Metrics go to stdout in exactly `simulate`'s format and auxiliary
/// lines to stderr, so a virtual-time replay's stdout diffs clean against
/// the offline run it reproduces.
pub fn replay(raw: Vec<String>) -> Result<(), String> {
    let mut args = Args::parse(raw, &["batch"])?;
    let lambda: f64 = args.require("lambda")?;
    let (topo, config) = common_config(&mut args, lambda, "wddh")?;
    let trace_path = args
        .get_str("trace")
        .ok_or_else(|| "missing required flag --trace".to_string())?;
    let speed = args.get_str("speed");
    let stream = args.get_str("stream");
    let jobs: usize = args.get_or("jobs", default_jobs())?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".to_string());
    }
    let config = with_batch_workers(config, jobs);
    args.finish()?;
    let pacing = match speed {
        None => ReplayPacing::Virtual,
        Some(raw) => {
            let speed: f64 = raw
                .parse()
                .map_err(|e| format!("--speed: cannot parse `{raw}`: {e}"))?;
            if !(speed.is_finite() && speed > 0.0) {
                return Err(format!("--speed must be positive, got {raw}"));
            }
            ReplayPacing::Paced { speed }
        }
    };
    let path = std::path::Path::new(&trace_path);
    let outcome = match stream {
        None => {
            let (outcome, _) = replay_trace(&topo, &config, path, pacing, NullRecorder)
                .map_err(|e| format!("replay `{trace_path}`: {e}"))?;
            outcome
        }
        Some(stream_path) => {
            let rec =
                StreamRecorder::create_default(std::path::Path::new(&stream_path), config.seed)
                    .map_err(|e| format!("cannot create stream file `{stream_path}`: {e}"))?;
            let (outcome, rec) = replay_trace(&topo, &config, path, pacing, rec)
                .map_err(|e| format!("replay `{trace_path}`: {e}"))?;
            let lines = rec
                .finish()
                .map_err(|e| format!("stream writer for `{stream_path}`: {e}"))?;
            eprintln!("streamed              {lines} events -> {stream_path}");
            outcome
        }
    };
    eprintln!(
        "replayed              {} arrivals from {trace_path} (recorded seed {})",
        outcome.arrivals, outcome.header.seed
    );
    eprintln!(
        "decisions             {} ({} admitted)",
        outcome.decisions.len(),
        outcome.decisions.iter().filter(|d| d.admitted).count()
    );
    print_metrics(&outcome.metrics);
    Ok(())
}

/// `anycast serve`: run the admission controller as a long-lived daemon
/// behind a TCP or Unix socket.
pub fn serve(raw: Vec<String>) -> Result<(), String> {
    let mut args = Args::parse(raw, &["batch", "no-shed"])?;
    let lambda: f64 = args.get_or("lambda", 1.0)?;
    let (topo, config) = common_config(&mut args, lambda, "wddh")?;
    let listen = args.get_str("listen");
    let unix = args.get_str("unix");
    let speed: f64 = args.get_or("speed", 1.0)?;
    let tick_ms: u64 = args.get_or("tick-ms", 5)?;
    let stream = args.get_str("stream");
    let window = args.get_str("window");
    let queue_limit: usize = args.get_or("queue-limit", 1024)?;
    let no_shed = args.switch("no-shed");
    args.finish()?;
    if !(speed.is_finite() && speed > 0.0) {
        return Err(format!("--speed must be positive, got {speed}"));
    }
    let window_secs = match window {
        None => None,
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .map_err(|e| format!("--window: cannot parse `{raw}`: {e}"))?;
            if !(secs.is_finite() && secs > 0.0) {
                return Err(format!("--window must be positive seconds, got {secs}"));
            }
            Some(secs)
        }
    };
    if queue_limit == 0 {
        return Err("--queue-limit must be positive".to_string());
    }
    let endpoint = match (listen, unix) {
        (Some(addr), None) => Endpoint::Tcp(addr),
        (None, Some(path)) => Endpoint::Unix(path.into()),
        (Some(_), Some(_)) => return Err("--listen and --unix are mutually exclusive".into()),
        (None, None) => return Err("missing --listen or --unix".into()),
    };
    let mut overload = anycast_daemon::OverloadOptions::default().with_queue_limit(queue_limit);
    overload.shed = !no_shed;
    let options = ServeOptions {
        speed,
        tick: std::time::Duration::from_millis(tick_ms),
        telemetry: stream.map(std::path::PathBuf::from),
        window_secs,
        overload,
        ..ServeOptions::default()
    };
    let shutdown = ShutdownFlag::new();
    if !install_signal_handler() {
        eprintln!("anycast: signal handler not installed; use the wire shutdown op");
    }
    let server =
        BoundServer::bind(&endpoint).map_err(|e| format!("cannot bind {endpoint:?}: {e}"))?;
    match (&endpoint, server.tcp_addr()) {
        (_, Some(addr)) => println!("listening on tcp {addr}"),
        (Endpoint::Unix(path), None) => println!("listening on unix {}", path.display()),
        _ => {}
    }
    println!(
        "system {} seed {} speed {speed}x horizon {}s",
        config.system.label(),
        config.seed,
        config.warmup_secs + config.measure_secs
    );
    let report = server
        .run(&topo, &config, &options, shutdown)
        .map_err(|e| format!("serve: {e}"))?;
    println!(
        "served                {} requests ({} decisions routed)",
        report.submitted, report.decided
    );
    let c = &report.counters;
    println!(
        "service               {} admits, {} shed, {} duplicates, {} rejected at shutdown",
        c.admits_received, c.shed, c.duplicates, c.rejected_shutdown
    );
    println!(
        "service               {} resumed, {} torn down ({} misses), {} wire errors",
        c.resumed, c.torn_down, c.teardown_misses, c.wire_errors
    );
    println!(
        "service               queue peak {}, journal peak {} ({} evicted), shed engaged {}x",
        c.queue_peak, c.journal_peak, c.journal_evicted, c.shed_engaged
    );
    if options.telemetry.is_some() {
        println!(
            "telemetry             {} events written, {} dropped",
            report.telemetry_written, report.telemetry_dropped
        );
    }
    print_metrics(&report.metrics);
    let m = &report.metrics;
    if m.leaked_hold_bps != 0 || m.leaked_bandwidth_bps != 0 {
        return Err(format!(
            "ledger leak at shutdown: {} bps holds, {} bps reservations",
            m.leaked_hold_bps, m.leaked_bandwidth_bps
        ));
    }
    Ok(())
}

/// `anycast predict`.
///
/// Two back ends share the flag surface: the Appendix-A analytic model
/// (`--system ed1|sp` — closed-form weights, milliseconds, no simulation
/// at all) and the calibrated link-decomposition estimator
/// (`--system ed|wddh|wddb|gdi` — runs short DES calibration bursts
/// once, then predicts any λ grid in milliseconds).
pub fn predict(raw: Vec<String>) -> Result<(), String> {
    let mut args = Args::parse(raw, &[])?;
    let lambdas = match (args.get_str("lambda"), args.get_str("lambdas")) {
        (Some(_), Some(_)) => {
            return Err("--lambda and --lambdas are mutually exclusive".to_string())
        }
        (Some(spec), None) | (None, Some(spec)) => parse_range(&spec)?,
        (None, None) => return Err("one of --lambda or --lambdas is required".to_string()),
    };
    for &lambda in &lambdas {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(format!("--lambda must be positive, got {lambda}"));
        }
    }
    let jobs: usize = args.get_or("jobs", default_jobs())?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".to_string());
    }
    let hot: usize = args.get_or("hot", 5)?;
    let topo = parse_topology(&args.get_str("topology").unwrap_or_else(|| "mci".into()))?;
    let group = match args.get_str("group") {
        Some(raw) => Some(
            parse_id_list(&raw)?
                .into_iter()
                .map(NodeId::new)
                .collect::<Vec<_>>(),
        ),
        None => None,
    };
    let sources = match args.get_str("sources") {
        Some(raw) => Some(
            parse_id_list(&raw)?
                .into_iter()
                .map(NodeId::new)
                .collect::<Vec<_>>(),
        ),
        None => None,
    };
    let system_name = args.get_str("system").unwrap_or_else(|| "ed1".into());
    match system_name.as_str() {
        "ed1" => predict_analytic(
            &mut args,
            &topo,
            group,
            sources,
            &lambdas,
            jobs,
            hot,
            AnalyzedSystem::Ed1,
        ),
        "sp" => predict_analytic(
            &mut args,
            &topo,
            group,
            sources,
            &lambdas,
            jobs,
            hot,
            AnalyzedSystem::Sp,
        ),
        "ed" | "wddh" | "wddb" | "gdi" => predict_calibrated(
            &mut args,
            &topo,
            group,
            sources,
            &lambdas,
            jobs,
            hot,
            &system_name,
        ),
        other => Err(format!(
            "unknown system `{other}` (analytic: ed1, sp; calibrated estimator: ed, wddh, wddb, gdi)"
        )),
    }
}

/// Rejects any group/source node that the topology does not contain.
fn check_placement<'a>(
    topo: &Topology,
    nodes: impl Iterator<Item = &'a NodeId>,
) -> Result<(), String> {
    for n in nodes {
        if !topo.contains_node(*n) {
            return Err(format!(
                "{n} is not a node of the topology ({} nodes)",
                topo.node_count()
            ));
        }
    }
    Ok(())
}

/// Prints the `hot` highest-blocking links of `blocking` on `topo`.
fn print_hot_links(topo: &Topology, blocking: &[f64], hot: usize) {
    let mut links: Vec<(usize, f64)> = blocking.iter().copied().enumerate().collect();
    links.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (l, b) in links.into_iter().take(hot) {
        let link = topo
            .link(LinkId::new(l as u32))
            .expect("blocking vector matches topology");
        println!(
            "  {} ({}-{}): blocking {:.6}",
            link.id(),
            link.a(),
            link.b(),
            b
        );
    }
}

/// The Appendix-A back end of [`predict`]: `--system ed1|sp` under
/// `--model erlang|uaa`, batched over the λ grid.
#[allow(clippy::too_many_arguments)]
fn predict_analytic(
    args: &mut Args,
    topo: &Topology,
    group: Option<Vec<NodeId>>,
    sources: Option<Vec<NodeId>>,
    lambdas: &[f64],
    jobs: usize,
    hot: usize,
    system: AnalyzedSystem,
) -> Result<(), String> {
    let model = match args
        .get_str("model")
        .unwrap_or_else(|| "erlang".into())
        .as_str()
    {
        "erlang" => BlockingModel::ErlangB,
        "uaa" => BlockingModel::Uaa,
        other => {
            return Err(format!(
                "unknown blocking model `{other}` (expected erlang or uaa)"
            ))
        }
    };
    args.finish()?;
    let spec_at = |lambda: f64| {
        let mut spec = ScenarioSpec::paper_defaults(lambda);
        if let Some(g) = &group {
            spec.group_members = g.clone();
        }
        if let Some(s) = &sources {
            spec.sources = s.clone();
        }
        spec
    };
    let probe = spec_at(lambdas[0]);
    check_placement(topo, probe.group_members.iter().chain(&probe.sources))?;

    if let [lambda] = lambdas {
        let scenario = build_scenario(topo, &spec_at(*lambda), system);
        let p = predict_ap(&scenario, model);
        println!("system                {system:?}");
        println!("model                 {model:?}");
        println!("lambda                {lambda:.3} flows/s");
        println!("admission probability {:.6}", p.admission_probability);
        println!(
            "fixed point           {} iterations, converged = {}",
            p.iterations, p.converged
        );
        println!("hottest links:");
        print_hot_links(topo, &p.link_blocking, hot);
    } else {
        let cases: Vec<_> = lambdas
            .iter()
            .map(|&lambda| (build_scenario(topo, &spec_at(lambda), system), model))
            .collect();
        let predictions = predict_ap_batch(jobs, &cases);
        println!("system {system:?}  model {model:?}  jobs {jobs}");
        println!(
            "{:>8}  {:>10}  {:>10}  {:>9}",
            "lambda", "admission", "iterations", "converged"
        );
        for (p, &lambda) in predictions.iter().zip(lambdas) {
            println!(
                "{lambda:8.2}  {:10.6}  {:10}  {:9}",
                p.admission_probability, p.iterations, p.converged
            );
        }
        let top = predictions.last().expect("at least one lambda");
        println!("hottest links at lambda {:.2}:", lambdas[lambdas.len() - 1]);
        print_hot_links(topo, &top.link_blocking, hot);
    }
    Ok(())
}

/// The link-decomposition back end of [`predict`]: calibrates the
/// estimator for `--system ed|wddh|wddb|gdi` with short DES bursts, then
/// predicts the λ grid through the worker pool.
#[allow(clippy::too_many_arguments)]
fn predict_calibrated(
    args: &mut Args,
    topo: &Topology,
    group: Option<Vec<NodeId>>,
    sources: Option<Vec<NodeId>>,
    lambdas: &[f64],
    jobs: usize,
    hot: usize,
    system_name: &str,
) -> Result<(), String> {
    if args.get_str("model").is_some() {
        return Err(
            "--model applies only to the analytic systems (ed1, sp); the calibrated \
             estimator derives per-link blocking from its bursts"
                .to_string(),
        );
    }
    let r: u32 = args.get_or("r", 2)?;
    let alpha: f64 = args.get_or("alpha", 0.5)?;
    let system = parse_system(system_name, r, alpha, 1)?;
    let anchors = match args.get_str("anchors") {
        Some(spec) => parse_range(&spec)?,
        None => CalibrationOptions::default().anchors,
    };
    for &a in &anchors {
        if !(a.is_finite() && a > 0.0) {
            return Err(format!("--anchors must be positive rates, got {a}"));
        }
    }
    let calib_warmup: f64 = args.get_or("calib-warmup", 90.0)?;
    let calib_measure: f64 = args.get_or("calib-measure", 60.0)?;
    if !(calib_warmup.is_finite()
        && calib_warmup >= 0.0
        && calib_measure.is_finite()
        && calib_measure > 0.0)
    {
        return Err(format!(
            "calibration horizons must be positive, got --calib-warmup {calib_warmup} \
             --calib-measure {calib_measure}"
        ));
    }
    let compression: f64 = args.get_or("compression", 6.0)?;
    if !(compression.is_finite() && compression >= 1.0) {
        return Err(format!(
            "--compression must be at least 1, got {compression}"
        ));
    }
    let seed: u64 = args.get_or("seed", CalibrationOptions::default().seed)?;
    args.finish()?;

    let mut base = ExperimentConfig::paper_defaults(lambdas[0], system);
    if let Some(g) = group {
        base = base.with_group(g);
    }
    if let Some(s) = sources {
        base = base.with_sources(s);
    }
    check_placement(topo, base.group_members.iter().chain(&base.sources))?;

    let options = CalibrationOptions {
        anchors,
        seed,
        burst: CalibrationBurst {
            warmup_secs: calib_warmup,
            measure_secs: calib_measure,
            ..CalibrationBurst::default()
        },
        time_compression: compression,
        jobs,
    };
    let start = std::time::Instant::now();
    let estimator = Estimator::calibrated(topo, &base, &options);
    let calibrate_secs = start.elapsed().as_secs_f64();
    let table = estimator
        .calibration()
        .expect("calibrated estimator has a table");
    println!("system                {}", estimator.label());
    println!(
        "calibration           {} bursts ({} requests, compression {compression}) in {calibrate_secs:.2} s",
        options.anchors.len(),
        table.total_requests(),
    );

    if let [lambda] = lambdas {
        let est = estimator.predict(*lambda);
        println!("lambda                {lambda:.3} flows/s");
        println!("admission probability {:.6}", est.admission_probability);
        println!(
            "  raw composition     {:.6}  residual {:+.6}",
            est.raw_admission_probability, est.residual_correction
        );
        println!(
            "mean tries            {:.4} ({:.4} retrials)",
            est.mean_tries, est.mean_retrials
        );
        println!(
            "fixed point           {} iterations, converged = {}",
            est.iterations, est.converged
        );
        println!("hottest links:");
        print_hot_links(topo, &est.link_saturation, hot);
    } else {
        let estimates = estimator.predict_batch(jobs, lambdas);
        println!(
            "{:>8}  {:>10}  {:>10}  {:>9}  {:>6}  {:>9}",
            "lambda", "admission", "raw", "residual", "tries", "converged"
        );
        for est in &estimates {
            println!(
                "{:8.2}  {:10.6}  {:10.6}  {:+9.6}  {:6.3}  {:9}",
                est.lambda,
                est.admission_probability,
                est.raw_admission_probability,
                est.residual_correction,
                est.mean_tries,
                est.converged
            );
        }
        let top = estimates.last().expect("at least one lambda");
        println!("hottest links at lambda {:.2}:", top.lambda);
        print_hot_links(topo, &top.link_saturation, hot);
    }
    Ok(())
}

/// `anycast topo`.
pub fn topo(raw: Vec<String>) -> Result<(), String> {
    let mut args = Args::parse(raw, &[])?;
    let spec = args.get_str("topology").unwrap_or_else(|| "mci".into());
    args.finish()?;
    let topo = parse_topology(&spec)?;
    let m = metrics::analyze(&topo);
    println!("topology       {spec}");
    println!("nodes          {}", m.nodes);
    println!("links          {}", m.links);
    println!("mean degree    {:.3}", m.mean_degree);
    println!("degree range   {}..={}", m.min_degree, m.max_degree);
    match m.diameter {
        Some(d) => println!("diameter       {d}"),
        None => println!("diameter       (disconnected)"),
    }
    match m.mean_distance {
        Some(d) => println!("mean distance  {d:.3}"),
        None => println!("mean distance  (disconnected)"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn common_config_defaults_to_paper_setup() {
        let mut args = Args::parse(strs(&[]), &[]).unwrap();
        let (topo, config) = common_config(&mut args, 20.0, "wddh").unwrap();
        assert_eq!(topo.node_count(), 19);
        assert_eq!(config.lambda, 20.0);
        assert_eq!(config.system.label(), "<WD/D+H,2>");
        assert_eq!(config.sources.len(), 9);
        assert_eq!(config.group_members.len(), 5);
    }

    #[test]
    fn non_mci_default_sources_are_non_members() {
        let mut args = Args::parse(strs(&["--topology", "ring:6", "--group", "0,3"]), &[]).unwrap();
        let (_, config) = common_config(&mut args, 5.0, "wddh").unwrap();
        let sources: Vec<u32> = config.sources.iter().map(|n| n.raw()).collect();
        assert_eq!(sources, vec![1, 2, 4, 5]);
    }

    #[test]
    fn rejects_bad_common_options() {
        for (flags, needle) in [
            (vec!["--system", "bogus"], "unknown system"),
            (vec!["--burstiness", "2.5"], "burstiness"),
            (vec!["--group", "0,99"], "not a node"),
            (vec!["--r", "0"], "--r"),
        ] {
            let mut args = Args::parse(strs(&flags), &[]).unwrap();
            let err = common_config(&mut args, 10.0, "wddh").unwrap_err();
            assert!(err.contains(needle), "{flags:?}: {err}");
        }
        let mut args = Args::parse(strs(&[]), &[]).unwrap();
        assert!(common_config(&mut args, -1.0, "wddh").is_err());
    }

    #[test]
    fn route_mode_flags_map_to_config() {
        let mut args = Args::parse(strs(&["--route-mode", "oracle"]), &[]).unwrap();
        let (_, config) = common_config(&mut args, 10.0, "wddh").unwrap();
        assert_eq!(config.routing, RouteMode::on_demand());

        let mut args = Args::parse(
            strs(&["--route-mode", "oracle", "--route-cache", "32"]),
            &[],
        )
        .unwrap();
        let (_, config) = common_config(&mut args, 10.0, "wddh").unwrap();
        assert_eq!(config.routing, RouteMode::OnDemand { capacity: 32 });

        // --route-cache alone implies the oracle.
        let mut args = Args::parse(strs(&["--route-cache", "8"]), &[]).unwrap();
        let (_, config) = common_config(&mut args, 10.0, "wddh").unwrap();
        assert_eq!(config.routing, RouteMode::OnDemand { capacity: 8 });

        let mut args = Args::parse(strs(&[]), &[]).unwrap();
        let (_, config) = common_config(&mut args, 10.0, "wddh").unwrap();
        assert_eq!(config.routing, RouteMode::Precomputed);

        for flags in [
            vec!["--route-mode", "bogus"],
            vec!["--route-mode", "table", "--route-cache", "8"],
            vec!["--route-cache", "0"],
        ] {
            let mut args = Args::parse(strs(&flags), &[]).unwrap();
            assert!(common_config(&mut args, 10.0, "wddh").is_err(), "{flags:?}");
        }
    }

    #[test]
    fn simulate_runs_end_to_end() {
        simulate(strs(&[
            "--lambda",
            "3",
            "--system",
            "ed",
            "--warmup",
            "20",
            "--measure",
            "40",
        ]))
        .unwrap();
    }

    #[test]
    fn simulate_accepts_a_fault_plan() {
        let path = std::env::temp_dir().join("anycast_cli_faults_test.toml");
        std::fs::write(
            &path,
            "[links]\nmtbf_secs = 60.0\nmttr_secs = 20.0\n\n[control]\nteardown_loss_probability = 0.1\n",
        )
        .unwrap();
        simulate(strs(&[
            "--lambda",
            "3",
            "--system",
            "ed",
            "--warmup",
            "20",
            "--measure",
            "60",
            "--faults",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::remove_file(&path).ok();
        // Unreadable and malformed plans are rejected with context.
        let err = simulate(strs(&["--lambda", "3", "--faults", "/no/such/plan.toml"])).unwrap_err();
        assert!(err.contains("cannot read fault plan"), "{err}");
        let bad = std::env::temp_dir().join("anycast_cli_faults_bad.toml");
        std::fs::write(&bad, "[bogus]\n").unwrap();
        let err =
            simulate(strs(&["--lambda", "3", "--faults", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("unknown section"), "{err}");
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn sweep_runs_and_validates() {
        sweep(strs(&[
            "--lambdas",
            "3:6:3",
            "--system",
            "sp",
            "--warmup",
            "10",
            "--measure",
            "20",
        ]))
        .unwrap();
        assert!(sweep(strs(&["--lambdas", "3", "--lambda", "4"])).is_err());
        assert!(sweep(strs(&[])).is_err());
    }

    #[test]
    fn simulate_replications_and_jobs() {
        simulate(strs(&[
            "--lambda",
            "3",
            "--system",
            "ed",
            "--warmup",
            "10",
            "--measure",
            "20",
            "--reps",
            "2",
            "--jobs",
            "2",
        ]))
        .unwrap();
        assert!(simulate(strs(&["--lambda", "3", "--reps", "0"])).is_err());
        assert!(simulate(strs(&["--lambda", "3", "--jobs", "0"])).is_err());
    }

    #[test]
    fn sweep_accepts_jobs_and_reps() {
        sweep(strs(&[
            "--lambdas",
            "3:6:3",
            "--system",
            "sp",
            "--warmup",
            "10",
            "--measure",
            "20",
            "--reps",
            "2",
            "--jobs",
            "4",
        ]))
        .unwrap();
    }

    #[test]
    fn replication_seeds_are_substreams() {
        let mut args = Args::parse(strs(&["--reps", "3", "--jobs", "2"]), &[]).unwrap();
        let (seeds, jobs) = replication_plan(&mut args, 42).unwrap();
        assert_eq!(jobs, 2);
        assert_eq!(
            seeds,
            vec![
                SimRng::substream_seed(42, 0),
                SimRng::substream_seed(42, 1),
                SimRng::substream_seed(42, 2)
            ]
        );
        // The default keeps the base seed itself for exact compatibility.
        let mut args = Args::parse(strs(&[]), &[]).unwrap();
        let (seeds, _) = replication_plan(&mut args, 42).unwrap();
        assert_eq!(seeds, vec![42]);
    }

    #[test]
    fn predict_runs_and_validates() {
        predict(strs(&["--lambda", "20"])).unwrap();
        predict(strs(&[
            "--lambda", "20", "--system", "sp", "--model", "uaa",
        ]))
        .unwrap();
        assert!(predict(strs(&["--lambda", "20", "--system", "x"])).is_err());
        assert!(predict(strs(&["--lambda", "20", "--model", "x"])).is_err());
        assert!(predict(strs(&["--lambda", "-3"])).is_err());
        assert!(predict(strs(&["--lambda", "20", "--group", "77"])).is_err());
        // The λ grid surface: exactly one of --lambda/--lambdas, jobs >= 1.
        assert!(predict(strs(&[])).is_err());
        assert!(predict(strs(&["--lambda", "5", "--lambdas", "5:10:5"])).is_err());
        assert!(predict(strs(&["--lambda", "20", "--jobs", "0"])).is_err());
    }

    #[test]
    fn predict_batches_lambda_grids() {
        predict(strs(&["--lambdas", "10:30:10", "--jobs", "2"])).unwrap();
        predict(strs(&[
            "--lambdas",
            "10:30:10",
            "--system",
            "sp",
            "--model",
            "uaa",
            "--hot",
            "3",
        ]))
        .unwrap();
    }

    #[test]
    fn predict_calibrated_estimator_end_to_end() {
        // One short anchor burst keeps the calibration cheap; the grid
        // then exercises predict_batch through the pool.
        predict(strs(&[
            "--lambdas",
            "10:30:20",
            "--system",
            "wddh",
            "--anchors",
            "20",
            "--calib-warmup",
            "30",
            "--calib-measure",
            "30",
            "--jobs",
            "2",
        ]))
        .unwrap();
        predict(strs(&[
            "--lambda",
            "15",
            "--system",
            "gdi",
            "--anchors",
            "15",
            "--calib-warmup",
            "30",
            "--calib-measure",
            "30",
        ]))
        .unwrap();
    }

    #[test]
    fn predict_estimator_flags_validate() {
        for (flags, needle) in [
            (vec!["--system", "ed", "--model", "uaa"], "--model"),
            (
                vec!["--system", "ed", "--compression", "0.5"],
                "--compression",
            ),
            (vec!["--system", "ed", "--anchors", "-4"], "--anchors"),
            (vec!["--system", "ed", "--calib-measure", "0"], "horizons"),
            (vec!["--system", "ed", "--r", "0"], "--r"),
            (vec!["--system", "ed", "--group", "77"], "not a node"),
        ] {
            let mut raw = vec!["--lambda", "10"];
            raw.extend(&flags);
            let err = predict(strs(&raw)).unwrap_err();
            assert!(err.contains(needle), "{flags:?}: {err}");
        }
    }

    #[test]
    fn topo_runs_and_validates() {
        topo(strs(&[])).unwrap();
        topo(strs(&["--topology", "grid:3x3"])).unwrap();
        assert!(topo(strs(&["--topology", "grid:zz"])).is_err());
        assert!(topo(strs(&["--nope", "1"])).is_err());
    }

    #[test]
    fn unknown_flags_rejected_per_command() {
        assert!(simulate(strs(&["--lambda", "3", "--wat", "1"])).is_err());
    }

    #[test]
    fn simulate_and_sweep_accept_telemetry_switch() {
        simulate(strs(&[
            "--lambda",
            "3",
            "--system",
            "ed",
            "--warmup",
            "10",
            "--measure",
            "20",
            "--telemetry",
        ]))
        .unwrap();
        sweep(strs(&[
            "--lambdas",
            "3",
            "--system",
            "sp",
            "--warmup",
            "10",
            "--measure",
            "20",
            "--telemetry",
        ]))
        .unwrap();
    }

    #[test]
    fn trace_writes_parseable_jsonl_with_rejections() {
        let dir = std::env::temp_dir().join("anycast_cli_trace_test");
        std::fs::remove_dir_all(&dir).ok();
        trace(strs(&[
            "saturated",
            "--warmup",
            "10",
            "--measure",
            "60",
            "--out",
            dir.to_str().unwrap(),
            "--format",
            "both",
            "--check",
        ]))
        .unwrap();
        let jsonl = std::fs::read_to_string(dir.join("trace_saturated_seed1.jsonl")).unwrap();
        assert!(
            jsonl.lines().any(|l| l.contains("\"kind\":\"rejection\"")),
            "saturated trace must contain at least one rejection"
        );
        for line in jsonl.lines() {
            json::parse(line).unwrap();
        }
        let csv = std::fs::read_to_string(dir.join("trace_saturated_seed1.csv")).unwrap();
        assert!(csv.starts_with("t,seed,kind"));
        let metrics = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        let parsed = json::parse(&metrics).unwrap();
        assert!(parsed.render().contains("rejections_total"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_accepts_two_phase_flags() {
        simulate(strs(&[
            "--lambda",
            "3",
            "--system",
            "ed",
            "--warmup",
            "10",
            "--measure",
            "30",
            "--signaling-delay",
            "0.02",
            "--setup-timeout",
            "0.5",
            "--backoff",
            "2:0.1:2:1",
        ]))
        .unwrap();
        // `inf` disables the setup timer entirely.
        simulate(strs(&[
            "--lambda",
            "3",
            "--system",
            "ed",
            "--warmup",
            "10",
            "--measure",
            "20",
            "--setup-timeout",
            "inf",
        ]))
        .unwrap();
    }

    #[test]
    fn two_phase_flags_validate() {
        let err = simulate(strs(&[
            "--lambda",
            "3",
            "--system",
            "sp",
            "--signaling-delay",
            "0.1",
        ]))
        .unwrap_err();
        assert!(err.contains("DAC system"), "{err}");
        for (flag, value) in [
            ("--signaling-delay", "-1"),
            ("--setup-timeout", "0"),
            ("--backoff", "3:0.1:2"),
            ("--backoff", "3:0.1:0.5:2"),
            ("--backoff", "x:0.1:2:2"),
        ] {
            let err = simulate(strs(&["--lambda", "3", flag, value])).unwrap_err();
            assert!(
                err.contains(flag.trim_start_matches('-')),
                "{flag} {value}: {err}"
            );
        }
    }

    #[test]
    fn parse_backoff_round_trips() {
        let p = parse_backoff("4:0.5:3:10").unwrap();
        assert_eq!(p.max_retransmits, 4);
        assert_eq!(p.base_secs, 0.5);
        assert_eq!(p.multiplier, 3.0);
        assert_eq!(p.max_backoff_secs, 10.0);
        assert_eq!(p.jitter_frac, BackoffPolicy::default().jitter_frac);
        let p = parse_backoff("1:0.1:2:2:0").unwrap();
        assert_eq!(p.jitter_frac, 0.0);
        assert!(parse_backoff("1:2").is_err());
        assert!(parse_backoff("1:0.1:2:2:1.5").is_err());
    }

    #[test]
    fn parse_backoff_rejects_non_finite_fields() {
        // `inf`/`nan` parse as valid f64s, so the finiteness guard (not
        // the parser) must reject them — in every numeric position.
        for raw in [
            "3:inf:2:2",
            "3:nan:2:2",
            "3:0.1:inf:2",
            "3:0.1:2:inf",
            "3:0.1:2:2:nan",
        ] {
            let err = parse_backoff(raw).unwrap_err();
            assert!(
                err.contains("must be non-negative"),
                "`{raw}` must hit the finiteness guard, got: {err}"
            );
        }
    }

    #[test]
    fn batch_switch_enables_batched_admission() {
        let mut args = Args::parse(strs(&["--batch"]), &["batch"]).unwrap();
        let (_, config) = common_config(&mut args, 20.0, "wddh").unwrap();
        assert!(config.batch, "--batch must toggle batched admission");
        let mut args = Args::parse(strs(&[]), &["batch"]).unwrap();
        let (_, config) = common_config(&mut args, 20.0, "wddh").unwrap();
        assert!(!config.batch, "batching defaults to off");
        // End-to-end through the real command parser.
        simulate(strs(&[
            "--lambda",
            "3",
            "--system",
            "gdi",
            "--warmup",
            "20",
            "--measure",
            "40",
            "--batch",
        ]))
        .unwrap();
    }

    #[test]
    fn jobs_flag_feeds_the_batch_evaluator() {
        // The shared --jobs count reaches the in-batch fan-out only when
        // batching is on; otherwise the config keeps its default of 1.
        let mut args = Args::parse(strs(&["--batch"]), &["batch"]).unwrap();
        let (_, config) = common_config(&mut args, 20.0, "wddh").unwrap();
        assert_eq!(with_batch_workers(config, 6).batch_jobs, 6);
        let mut args = Args::parse(strs(&[]), &["batch"]).unwrap();
        let (_, config) = common_config(&mut args, 20.0, "wddh").unwrap();
        assert_eq!(with_batch_workers(config, 6).batch_jobs, 1);
        // End-to-end: batched simulate with an explicit worker count.
        simulate(strs(&[
            "--lambda",
            "3",
            "--system",
            "wddb",
            "--warmup",
            "20",
            "--measure",
            "40",
            "--batch",
            "--jobs",
            "3",
        ]))
        .unwrap();
    }

    #[test]
    fn replay_accepts_jobs_for_batched_runs() {
        let path = std::env::temp_dir().join("anycast_cli_replay_jobs_test.jsonl");
        std::fs::remove_file(&path).ok();
        let flags = [
            "--lambda",
            "8",
            "--system",
            "ed",
            "--warmup",
            "10",
            "--measure",
            "30",
        ];
        let mut record_args: Vec<&str> = flags.to_vec();
        record_args.extend(["--out", path.to_str().unwrap()]);
        record(strs(&record_args)).unwrap();
        let mut replay_args: Vec<&str> = flags.to_vec();
        replay_args.extend(["--trace", path.to_str().unwrap(), "--batch", "--jobs", "2"]);
        replay(strs(&replay_args)).unwrap();
        let mut bad_args: Vec<&str> = flags.to_vec();
        bad_args.extend(["--trace", path.to_str().unwrap(), "--jobs", "0"]);
        assert!(replay(strs(&bad_args)).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_streams_parseable_jsonl() {
        let path = std::env::temp_dir().join("anycast_cli_stream_test.jsonl");
        std::fs::remove_file(&path).ok();
        trace(strs(&[
            "light",
            "--warmup",
            "10",
            "--measure",
            "40",
            "--signaling-delay",
            "0.02",
            "--stream",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            json::parse(line).unwrap();
        }
        assert!(
            text.lines().any(|l| l.contains("\"kind\":\"hold_placed\"")),
            "delayed two-phase trace must contain hold telemetry"
        );
        std::fs::remove_file(&path).ok();
        // --stream is single-replication only.
        let err = trace(strs(&[
            "light",
            "--reps",
            "2",
            "--stream",
            "/tmp/anycast_never_written.jsonl",
        ]))
        .unwrap_err();
        assert!(err.contains("--stream"), "{err}");
    }

    #[test]
    fn record_then_replay_round_trips() {
        let path = std::env::temp_dir().join("anycast_cli_record_test.jsonl");
        std::fs::remove_file(&path).ok();
        let flags = [
            "--lambda",
            "8",
            "--system",
            "ed",
            "--warmup",
            "20",
            "--measure",
            "40",
            "--seed",
            "3",
        ];
        let mut record_args: Vec<&str> = flags.to_vec();
        record_args.extend(["--out", path.to_str().unwrap()]);
        record(strs(&record_args)).unwrap();
        assert!(path.exists());
        // Replaying with the same config (batched, paced or virtual) works;
        // the bit-identity itself is asserted in the daemon/core tests.
        let mut replay_args: Vec<&str> = flags.to_vec();
        replay_args.extend(["--trace", path.to_str().unwrap(), "--batch"]);
        replay(strs(&replay_args)).unwrap();
        let mut paced_args: Vec<&str> = flags.to_vec();
        paced_args.extend(["--trace", path.to_str().unwrap(), "--speed", "10000"]);
        replay(strs(&paced_args)).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_and_replay_validate_their_flags() {
        assert!(record(strs(&[])).is_err()); // missing --lambda
        let err = replay(strs(&["--lambda", "8"])).unwrap_err();
        assert!(err.contains("--trace"), "{err}");
        let err = replay(strs(&["--lambda", "8", "--trace", "/no/such/trace.jsonl"])).unwrap_err();
        assert!(err.contains("replay"), "{err}");
        let path = std::env::temp_dir().join("anycast_cli_replay_speed_test.jsonl");
        record(strs(&[
            "--lambda",
            "8",
            "--warmup",
            "5",
            "--measure",
            "10",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let err = replay(strs(&[
            "--lambda",
            "8",
            "--warmup",
            "5",
            "--measure",
            "10",
            "--trace",
            path.to_str().unwrap(),
            "--speed",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("--speed"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_validates_its_flags() {
        let err = serve(strs(&["--lambda", "1"])).unwrap_err();
        assert!(err.contains("--listen or --unix"), "{err}");
        let err = serve(strs(&[
            "--lambda",
            "1",
            "--listen",
            "127.0.0.1:0",
            "--unix",
            "/tmp/x.sock",
        ]))
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = serve(strs(&[
            "--lambda",
            "1",
            "--listen",
            "127.0.0.1:0",
            "--speed",
            "-1",
        ]))
        .unwrap_err();
        assert!(err.contains("--speed"), "{err}");
        let err = serve(strs(&[
            "--lambda",
            "1",
            "--listen",
            "127.0.0.1:0",
            "--window",
            "-3",
        ]))
        .unwrap_err();
        assert!(err.contains("--window"), "{err}");
        let err = serve(strs(&[
            "--lambda",
            "1",
            "--listen",
            "127.0.0.1:0",
            "--queue-limit",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("--queue-limit"), "{err}");
    }

    #[test]
    fn trace_validates_its_flags() {
        assert!(trace(strs(&["bogus"])).is_err());
        assert!(trace(strs(&["--format", "xml"])).is_err());
        assert!(trace(strs(&["--sample", "-5"])).is_err());
        assert!(trace(strs(&["--events", "0"])).is_err());
    }
}
