//! End-to-end service tests: a real client over a real socket against the
//! live daemon loop, and the graceful-shutdown zero-leak guarantee.

use anycast_dac::experiment::{ExperimentConfig, SignalingMode, SystemSpec, TwoPhaseConfig};
use anycast_dac::policy::PolicySpec;
use anycast_daemon::{BoundServer, Endpoint, ServeOptions, ShutdownFlag};
use anycast_net::topologies;
use anycast_telemetry::json::{parse, JsonValue};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

fn field<'a>(v: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    match v {
        JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn op_of(v: &JsonValue) -> String {
    match field(v, "op") {
        Some(JsonValue::Str(s)) => s.clone(),
        other => panic!("response without op: {other:?}"),
    }
}

/// A live daemon: no warm-up discard, long horizon, modest speed so
/// two-phase setups stay in flight for wall-clock milliseconds.
fn service_config(system: SystemSpec) -> ExperimentConfig {
    ExperimentConfig::paper_defaults(1.0, system)
        .with_warmup_secs(0.0)
        .with_measure_secs(3_600.0)
        .with_seed(7)
}

/// One request line out, one (or more) response lines back.
struct Client<W: Write, R: BufRead> {
    writer: W,
    reader: R,
}

impl<W: Write, R: BufRead> Client<W, R> {
    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> JsonValue {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        assert!(!line.is_empty(), "server closed the connection early");
        parse(line.trim()).unwrap()
    }
}

#[test]
fn tcp_round_trip_admit_stats_shutdown() {
    let topo = topologies::mci();
    let config = service_config(SystemSpec::dac(PolicySpec::wd_dh_default(), 2));
    let options = ServeOptions {
        speed: 50.0,
        tick: Duration::from_millis(2),
        ..ServeOptions::default()
    };
    let shutdown = ShutdownFlag::new();
    let server = BoundServer::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
    let addr = server.tcp_addr().unwrap();

    let report = std::thread::scope(|s| {
        let serve = s.spawn(|| server.run(&topo, &config, &options, shutdown).unwrap());

        let stream = TcpStream::connect(addr).unwrap();
        let mut client = Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        };

        // Malformed line: error response, connection stays usable.
        client.send("{\"op\":\"frobnicate\"}");
        let v = client.recv();
        assert_eq!(op_of(&v), "error");

        // One admission round-trip.
        client.send(
            "{\"op\":\"admit\",\"source\":1,\"group\":0,\"demand_bps\":64000,\"holding_secs\":300}",
        );
        let v = client.recv();
        assert_eq!(op_of(&v), "decision");
        assert_eq!(field(&v, "request"), Some(&JsonValue::Num(0.0)));
        assert_eq!(field(&v, "admitted"), Some(&JsonValue::Bool(true)));
        assert!(matches!(field(&v, "member"), Some(JsonValue::Num(_))));
        assert!(matches!(field(&v, "latency_us"), Some(JsonValue::Num(_))));

        // Stats reflect it.
        client.send("{\"op\":\"stats\"}");
        let v = client.recv();
        assert_eq!(op_of(&v), "stats");
        assert_eq!(field(&v, "offered"), Some(&JsonValue::Num(1.0)));
        assert_eq!(field(&v, "admitted"), Some(&JsonValue::Num(1.0)));
        assert_eq!(field(&v, "active_sessions"), Some(&JsonValue::Num(1.0)));
        assert_eq!(field(&v, "telemetry_dropped"), Some(&JsonValue::Num(0.0)));
        match field(&v, "reserved_bps") {
            Some(JsonValue::Num(x)) => assert!(*x >= 64_000.0, "reserved {x}"),
            other => panic!("bad reserved_bps: {other:?}"),
        }

        // Out-of-range admit: error, still connected.
        client.send(
            "{\"op\":\"admit\",\"source\":99,\"group\":0,\"demand_bps\":1,\"holding_secs\":1}",
        );
        assert_eq!(op_of(&client.recv()), "error");

        // Graceful exit over the wire.
        client.send("{\"op\":\"shutdown\"}");
        assert_eq!(op_of(&client.recv()), "shutting_down");
        serve.join().unwrap()
    });

    assert_eq!(report.submitted, 1);
    assert_eq!(report.decided, 1);
    assert_eq!(report.metrics.offered, 1);
    assert_eq!(report.metrics.admitted, 1);
    assert_eq!(report.metrics.leaked_hold_bps, 0);
    assert_eq!(report.metrics.leaked_bandwidth_bps, 0);
}

#[test]
fn unix_socket_round_trip() {
    let topo = topologies::mci();
    let config = service_config(SystemSpec::dac(PolicySpec::Ed, 2));
    let options = ServeOptions {
        speed: 50.0,
        tick: Duration::from_millis(2),
        ..ServeOptions::default()
    };
    let shutdown = ShutdownFlag::new();
    let path =
        std::env::temp_dir().join(format!("anycast-daemon-test-{}.sock", std::process::id()));
    let server = BoundServer::bind(&Endpoint::Unix(path.clone())).unwrap();

    let report = std::thread::scope(|s| {
        let serve = s.spawn(|| server.run(&topo, &config, &options, shutdown).unwrap());
        let stream = UnixStream::connect(&path).unwrap();
        let mut client = Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        };
        client.send(
            "{\"op\":\"admit\",\"source\":3,\"group\":0,\"demand_bps\":64000,\"holding_secs\":60}",
        );
        let v = client.recv();
        assert_eq!(op_of(&v), "decision");
        client.send("{\"op\":\"shutdown\"}");
        assert_eq!(op_of(&client.recv()), "shutting_down");
        serve.join().unwrap()
    });
    assert_eq!(report.submitted, 1);
    assert!(!path.exists(), "socket file must be unlinked on shutdown");
}

/// Satellite 2: shutting down with asynchronous two-phase setups in
/// flight must release every pending hold (zero leak) and flush the
/// telemetry stream.
#[test]
fn graceful_shutdown_drains_two_phase_holds_and_flushes_telemetry() {
    let topo = topologies::mci();
    // Slow signalling (0.5 s/hop at 1x speed): setups submitted just
    // before shutdown cannot complete first, so holds are pending when
    // the drain runs.
    let config = service_config(SystemSpec::dac(PolicySpec::Ed, 2)).with_signaling(
        SignalingMode::TwoPhase(TwoPhaseConfig {
            per_hop_delay_secs: 0.5,
            ..TwoPhaseConfig::default()
        }),
    );
    let options = ServeOptions {
        speed: 1.0,
        tick: Duration::from_millis(2),
        telemetry: Some(std::env::temp_dir().join(format!(
            "anycast-daemon-shutdown-{}.jsonl",
            std::process::id()
        ))),
        ..ServeOptions::default()
    };
    let telemetry_path = options.telemetry.clone().unwrap();
    let shutdown = ShutdownFlag::new();
    let server = BoundServer::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
    let addr = server.tcp_addr().unwrap();

    let report = std::thread::scope(|s| {
        let serve = s.spawn(|| server.run(&topo, &config, &options, shutdown).unwrap());
        let stream = TcpStream::connect(addr).unwrap();
        let mut client = Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        };
        for source in [1, 3, 5, 7] {
            client.send(&format!(
                "{{\"op\":\"admit\",\"source\":{source},\"group\":0,\"demand_bps\":64000,\"holding_secs\":600}}"
            ));
        }
        // The setups are now in flight (0.5 s/hop ≫ the few ms elapsed);
        // stats must show pending holds before any decision lands.
        client.send("{\"op\":\"stats\"}");
        let v = client.recv();
        assert_eq!(op_of(&v), "stats");
        match field(&v, "setups_in_flight") {
            Some(JsonValue::Num(x)) => assert!(*x >= 1.0, "no setup in flight: {x}"),
            other => panic!("bad setups_in_flight: {other:?}"),
        }
        match field(&v, "pending_hold_bps") {
            Some(JsonValue::Num(x)) => assert!(*x > 0.0, "no pending hold bandwidth: {x}"),
            other => panic!("bad pending_hold_bps: {other:?}"),
        }
        client.send("{\"op\":\"shutdown\"}");
        assert_eq!(op_of(&client.recv()), "shutting_down");
        serve.join().unwrap()
    });

    assert_eq!(report.submitted, 4);
    assert!(report.metrics.holds_placed >= 1, "test must exercise holds");
    // The zero-leak guarantee: every pending hold released, ledger clean.
    assert_eq!(report.metrics.leaked_hold_bps, 0);
    assert_eq!(report.metrics.leaked_bandwidth_bps, 0);
    // Telemetry flushed and parseable; the accounting invariant holds.
    assert_eq!(report.telemetry_dropped, 0);
    let text = std::fs::read_to_string(&telemetry_path).unwrap();
    let lines = text.lines().count() as u64;
    assert!(lines > 0, "telemetry stream must not be empty");
    for line in text.lines() {
        parse(line).unwrap();
    }
    assert!(
        text.lines().any(|l| l.contains("hold_placed")),
        "two-phase run must stream hold telemetry"
    );
    std::fs::remove_file(&telemetry_path).ok();
}

/// Malformed client input — wire garbage over the socket and broken trace
/// rows through the replay path — must come back as protocol/validation
/// errors; the engine thread never panics and the service stays up.
#[test]
fn malformed_client_input_never_panics_the_engine() {
    use anycast_daemon::{read_trace, replay_trace, ReplayPacing};
    use anycast_telemetry::NullRecorder;

    let topo = topologies::mci();
    let config = service_config(SystemSpec::dac(PolicySpec::wd_dh_default(), 2));
    let options = ServeOptions {
        speed: 50.0,
        tick: Duration::from_millis(2),
        ..ServeOptions::default()
    };
    let shutdown = ShutdownFlag::new();
    let server = BoundServer::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
    let addr = server.tcp_addr().unwrap();

    let report = std::thread::scope(|s| {
        let serve = s.spawn(|| server.run(&topo, &config, &options, shutdown).unwrap());
        let stream = TcpStream::connect(addr).unwrap();
        let mut client = Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        };
        // Every hostile line draws an error response, never a crash:
        // garbage bytes, wrong types, zero/negative/non-finite numerics,
        // out-of-range indices.
        for bad in [
            "}{ not json at all",
            "[1,2,3]",
            "{\"op\":\"admit\"}",
            "{\"op\":\"admit\",\"source\":1,\"group\":0,\"demand_bps\":0,\"holding_secs\":10}",
            "{\"op\":\"admit\",\"source\":1,\"group\":0,\"demand_bps\":64000,\"holding_secs\":0}",
            "{\"op\":\"admit\",\"source\":1,\"group\":0,\"demand_bps\":64000,\"holding_secs\":-5}",
            "{\"op\":\"admit\",\"source\":1,\"group\":99,\"demand_bps\":64000,\"holding_secs\":10}",
            "{\"op\":\"admit\",\"source\":\"x\",\"group\":0,\"demand_bps\":64000,\"holding_secs\":10}",
        ] {
            client.send(bad);
            assert_eq!(op_of(&client.recv()), "error", "line survived: {bad}");
        }
        // The engine is still healthy: a valid admit round-trips.
        client.send(
            "{\"op\":\"admit\",\"source\":1,\"group\":0,\"demand_bps\":64000,\"holding_secs\":60}",
        );
        assert_eq!(op_of(&client.recv()), "decision");
        client.send("{\"op\":\"shutdown\"}");
        assert_eq!(op_of(&client.recv()), "shutting_down");
        serve.join().unwrap()
    });
    assert_eq!(
        report.submitted, 1,
        "only the valid request reaches the engine"
    );
    assert_eq!(report.metrics.leaked_hold_bps, 0);
    assert_eq!(report.metrics.leaked_bandwidth_bps, 0);

    // The replay path rejects broken trace rows the same way: errors with
    // line numbers, never an engine panic.
    let path = std::env::temp_dir().join(format!(
        "anycast-daemon-malformed-replay-{}.jsonl",
        std::process::id()
    ));
    let header = "{\"kind\":\"anycast-trace\",\"version\":1,\"seed\":7,\"lambda\":1,\
                  \"sources\":9,\"groups\":1,\"horizon_secs\":3600}";
    for (row, needle) in [
        (
            "{\"at\":1,\"source\":0,\"group\":0,\"holding_secs\":0,\"demand_bps\":64000}",
            "holding_secs",
        ),
        (
            "{\"at\":1,\"source\":0,\"group\":0,\"holding_secs\":10,\"demand_bps\":0}",
            "demand_bps",
        ),
        (
            "{\"at\":999999,\"source\":0,\"group\":0,\"holding_secs\":10,\"demand_bps\":64000}",
            "past the recorded horizon",
        ),
    ] {
        std::fs::write(&path, format!("{header}\n{row}\n")).unwrap();
        let err = read_trace(&path).unwrap_err().to_string();
        assert!(err.contains(":2:") && err.contains(needle), "{row}: {err}");
        let err = replay_trace(&topo, &config, &path, ReplayPacing::Virtual, NullRecorder)
            .unwrap_err()
            .to_string();
        assert!(err.contains(needle), "replay {row}: {err}");
    }
    std::fs::remove_file(&path).ok();
}

fn str_field(v: &JsonValue, key: &str) -> String {
    match field(v, key) {
        Some(JsonValue::Str(s)) => s.clone(),
        other => panic!("missing string field {key}: {other:?}"),
    }
}

#[test]
fn wire_errors_carry_reason_codes_and_the_offending_line() {
    let topo = topologies::mci();
    let config = service_config(SystemSpec::dac(PolicySpec::wd_dh_default(), 2));
    let options = ServeOptions {
        speed: 50.0,
        tick: Duration::from_millis(2),
        ..ServeOptions::default()
    };
    let shutdown = ShutdownFlag::new();
    let server = BoundServer::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
    let addr = server.tcp_addr().unwrap();

    let report = std::thread::scope(|s| {
        let serve = s.spawn(|| server.run(&topo, &config, &options, shutdown).unwrap());
        let stream = TcpStream::connect(addr).unwrap();
        let mut client = Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        };

        // Unknown op: the reason names it and the echo shows the line.
        client.send("{\"op\":\"frobnicate\"}");
        let v = client.recv();
        assert_eq!(op_of(&v), "error");
        assert_eq!(str_field(&v, "reason"), "unknown_op");
        assert!(str_field(&v, "line").contains("frobnicate"));

        // Unparseable JSON: reason `parse`.
        client.send("}{ garbage");
        let v = client.recv();
        assert_eq!(op_of(&v), "error");
        assert_eq!(str_field(&v, "reason"), "parse");
        assert!(str_field(&v, "line").contains("garbage"));

        // A line past the hard length guard: reason `line_too_long`,
        // echo truncated, connection still alive.
        let huge = format!("{{\"op\":\"admit\",\"pad\":\"{}\"}}", "y".repeat(9_000));
        client.send(&huge);
        let v = client.recv();
        assert_eq!(op_of(&v), "error");
        assert_eq!(str_field(&v, "reason"), "line_too_long");
        assert!(str_field(&v, "line").len() <= 120);

        // Indices outside the scenario: reason `out_of_range`.
        client.send(
            "{\"op\":\"admit\",\"source\":99,\"group\":0,\"demand_bps\":1,\"holding_secs\":1}",
        );
        let v = client.recv();
        assert_eq!(op_of(&v), "error");
        assert_eq!(str_field(&v, "reason"), "out_of_range");

        // The connection survived all four insults.
        client.send(
            "{\"op\":\"admit\",\"source\":1,\"group\":0,\"demand_bps\":64000,\"holding_secs\":60}",
        );
        assert_eq!(op_of(&client.recv()), "decision");
        client.send("{\"op\":\"shutdown\"}");
        assert_eq!(op_of(&client.recv()), "shutting_down");
        serve.join().unwrap()
    });

    assert_eq!(report.counters.wire_errors, 4);
    assert_eq!(report.submitted, 1);
    assert_eq!(report.metrics.leaked_hold_bps, 0);
    assert_eq!(report.metrics.leaked_bandwidth_bps, 0);
}

#[test]
fn wire_teardown_reclaims_a_live_session_exactly_once() {
    let topo = topologies::mci();
    let config = service_config(SystemSpec::dac(PolicySpec::wd_dh_default(), 2));
    let options = ServeOptions {
        speed: 50.0,
        tick: Duration::from_millis(2),
        ..ServeOptions::default()
    };
    let shutdown = ShutdownFlag::new();
    let server = BoundServer::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
    let addr = server.tcp_addr().unwrap();

    let report = std::thread::scope(|s| {
        let serve = s.spawn(|| server.run(&topo, &config, &options, shutdown).unwrap());
        let stream = TcpStream::connect(addr).unwrap();
        let mut client = Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        };

        client.send(
            "{\"op\":\"admit\",\"source\":1,\"group\":0,\"demand_bps\":64000,\"holding_secs\":600}",
        );
        let v = client.recv();
        assert_eq!(op_of(&v), "decision");
        assert_eq!(field(&v, "admitted"), Some(&JsonValue::Bool(true)));
        let session = match field(&v, "session") {
            Some(JsonValue::Num(s)) => *s as u64,
            other => panic!("admitted decision without session: {other:?}"),
        };

        // First teardown reclaims the reservation.
        client.send(&format!("{{\"op\":\"teardown\",\"session\":{session}}}"));
        let v = client.recv();
        assert_eq!(op_of(&v), "torn_down");
        assert_eq!(field(&v, "reclaimed"), Some(&JsonValue::Bool(true)));

        // The bandwidth is back immediately, long before the holding
        // deadline.
        client.send("{\"op\":\"stats\"}");
        let v = client.recv();
        assert_eq!(field(&v, "active_sessions"), Some(&JsonValue::Num(0.0)));
        assert_eq!(field(&v, "reserved_bps"), Some(&JsonValue::Num(0.0)));

        // A duplicate teardown and a teardown for a session that never
        // existed are both harmless misses.
        client.send(&format!("{{\"op\":\"teardown\",\"session\":{session}}}"));
        let v = client.recv();
        assert_eq!(field(&v, "reclaimed"), Some(&JsonValue::Bool(false)));
        client.send("{\"op\":\"teardown\",\"session\":424242}");
        let v = client.recv();
        assert_eq!(field(&v, "reclaimed"), Some(&JsonValue::Bool(false)));

        client.send("{\"op\":\"shutdown\"}");
        assert_eq!(op_of(&client.recv()), "shutting_down");
        serve.join().unwrap()
    });

    assert_eq!(report.counters.torn_down, 1);
    assert_eq!(report.counters.teardown_misses, 2);
    assert_eq!(report.metrics.leaked_hold_bps, 0);
    assert_eq!(report.metrics.leaked_bandwidth_bps, 0);
}

/// The crash/restart contract: a client that dies mid-stream and comes
/// back with the same correlation tokens gets **exactly one verdict per
/// request** — replayed from the journal when the decision landed while
/// it was gone, or delivered to the new connection when still in flight.
#[test]
fn reconnect_with_tokens_resumes_exactly_one_verdict_per_request() {
    let topo = topologies::mci();
    // Slow two-phase signalling so decisions are still in flight when
    // the first connection dies.
    let config = service_config(SystemSpec::dac(PolicySpec::Ed, 2)).with_signaling(
        SignalingMode::TwoPhase(TwoPhaseConfig {
            per_hop_delay_secs: 0.3,
            ..TwoPhaseConfig::default()
        }),
    );
    let options = ServeOptions {
        speed: 1.0,
        tick: Duration::from_millis(2),
        ..ServeOptions::default()
    };
    let shutdown = ShutdownFlag::new();
    let server = BoundServer::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
    let addr = server.tcp_addr().unwrap();

    let report = std::thread::scope(|s| {
        let serve = s.spawn(|| server.run(&topo, &config, &options, shutdown).unwrap());

        // First life: four tokened admits, then the process "crashes"
        // (connection dropped without reading a single verdict).
        {
            let stream = TcpStream::connect(addr).unwrap();
            let mut client = Client {
                writer: stream.try_clone().unwrap(),
                reader: BufReader::new(stream),
            };
            for t in 0..4 {
                client.send(&format!(
                    "{{\"op\":\"admit\",\"source\":{t},\"group\":0,\"demand_bps\":64000,\
                     \"holding_secs\":600,\"token\":\"boot-{t}\"}}"
                ));
            }
        }

        // Second life: same tokens, new connection.
        let stream = TcpStream::connect(addr).unwrap();
        let mut client = Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        };
        for t in 0..4 {
            client.send(&format!("{{\"op\":\"resume\",\"token\":\"boot-{t}\"}}"));
        }
        // Read until every token has a verdict: `decision` lines count,
        // `resumed`/`pending` status lines do not.
        let mut verdicts: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        while verdicts.len() < 4 || verdicts.values().sum::<u64>() < 4 {
            let v = client.recv();
            match op_of(&v).as_str() {
                "decision" => {
                    *verdicts.entry(str_field(&v, "token")).or_insert(0) += 1;
                }
                "resumed" => {
                    let state = str_field(&v, "state");
                    assert!(
                        state == "pending",
                        "token must not be unknown after a crash: {state}"
                    );
                }
                other => panic!("unexpected response {other}"),
            }
        }
        for t in 0..4 {
            assert_eq!(
                verdicts.get(&format!("boot-{t}")).copied(),
                Some(1),
                "exactly one verdict per request: {verdicts:?}"
            );
        }

        // Resuming a settled token replays the journaled verdict
        // verbatim instead of minting a second one.
        client.send("{\"op\":\"resume\",\"token\":\"boot-0\"}");
        let v = client.recv();
        assert_eq!(op_of(&v), "decision");
        assert_eq!(str_field(&v, "token"), "boot-0");

        // And a duplicate *submit* of a settled token is answered from
        // the journal too — the engine never sees a fifth request.
        client.send(
            "{\"op\":\"admit\",\"source\":0,\"group\":0,\"demand_bps\":64000,\
             \"holding_secs\":600,\"token\":\"boot-1\"}",
        );
        let v = client.recv();
        assert_eq!(op_of(&v), "decision");
        assert_eq!(str_field(&v, "token"), "boot-1");

        client.send("{\"op\":\"shutdown\"}");
        assert_eq!(op_of(&client.recv()), "shutting_down");
        serve.join().unwrap()
    });

    assert_eq!(report.submitted, 4, "the engine decided each request once");
    assert_eq!(report.decided, 4);
    assert_eq!(report.counters.duplicates, 1);
    assert!(report.counters.resumed >= 5);
    assert_eq!(report.metrics.leaked_hold_bps, 0);
    assert_eq!(report.metrics.leaked_bandwidth_bps, 0);
}
