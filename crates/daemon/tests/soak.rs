//! Service-layer chaos soak: a deterministic hostile-client swarm
//! (connection churn, slow-loris, half-frames, malformed JSON, duplicate
//! submits, reconnect-resume, withheld teardowns) against a live rolling-
//! horizon daemon whose *engine* is simultaneously losing RSVP teardown
//! messages (§4.4 soft state must reclaim them).
//!
//! The assertions are the deployment guarantees, not behaviour details:
//! the bandwidth ledger closes at zero leak, queue and journal memory
//! stay within their configured bounds, and the service-layer accounting
//! identity holds — every validated admit is either dispatched, answered
//! from the journal, shed with an explicit `overloaded`, or rejected
//! with an explicit `shutting_down`. Nothing vanishes.

use anycast_chaos::{run_chaos_clients, ChaosClientPlan, FaultPlan};
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_daemon::{BoundServer, Endpoint, OverloadOptions, ServeOptions, ShutdownFlag};
use anycast_net::topologies;
use anycast_telemetry::json::{parse, JsonValue};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn field<'a>(v: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    match v {
        JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn num(v: &JsonValue, key: &str) -> f64 {
    match field(v, key) {
        Some(JsonValue::Num(x)) => *x,
        other => panic!("missing numeric field {key}: {other:?}"),
    }
}

#[test]
fn soak_thousands_of_faulted_connections_leak_nothing() {
    let connections = 2_400;
    let topo = topologies::mci();
    // The engine loses 20% of its own teardown messages: wire-admitted
    // flows whose clients also vanish exercise the §4.4 soft-state path
    // end to end while the swarm hammers the socket.
    let config =
        ExperimentConfig::paper_defaults(1.0, SystemSpec::dac(PolicySpec::wd_dh_default(), 2))
            .with_warmup_secs(0.0)
            .with_measure_secs(3_600.0)
            .with_seed(11)
            .with_faults(FaultPlan::none().with_teardown_loss(0.2));
    let overload = OverloadOptions {
        journal_limit: 512,
        ..OverloadOptions::default()
    };
    let journal_limit = overload.journal_limit;
    let queue_limit = overload.queue_limit;
    let options = ServeOptions {
        speed: 50.0,
        tick: Duration::from_millis(2),
        window_secs: Some(120.0),
        overload,
        ..ServeOptions::default()
    };
    let shutdown = ShutdownFlag::new();
    let server = BoundServer::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();

    let (report, swarm) = std::thread::scope(|s| {
        let serve = s.spawn(|| server.run(&topo, &config, &options, shutdown).unwrap());

        let plan = ChaosClientPlan {
            connections,
            workers: 8,
            seed: 23,
            source_count: 9,
            group_count: 1,
            demand_bps: 64_000,
            holding_secs: 20.0,
            read_timeout: Duration::from_secs(20),
        };
        let swarm = run_chaos_clients(&addr, &plan);

        // One well-behaved control connection closes the run: the stats
        // line must still parse and reflect a sane rolling window, then
        // shutdown drains the daemon.
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let stats = parse(line.trim()).unwrap();
        assert!(
            num(&stats, "window_secs") > 0.0,
            "rolling mode must report its window"
        );
        assert!(num(&stats, "queue_depth") <= num(&stats, "queue_limit"));
        assert!(num(&stats, "journal_size") <= journal_limit as f64);
        writer.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();

        (serve.join().unwrap(), swarm)
    });

    // The swarm really was a soak, and really was hostile.
    assert!(
        swarm.connections >= connections as u64 - 10,
        "swarm opened too few connections: {}",
        swarm.connections
    );
    assert!(swarm.connections >= 2_000, "soak floor is 2000 connections");
    assert!(swarm.churned > 0, "churn behaviour never ran");
    assert!(
        swarm.partial_frames > 0,
        "partial-frame behaviour never ran"
    );
    assert!(swarm.slow_loris > 0, "slow-loris behaviour never ran");
    assert!(swarm.malformed_sent > 0, "malformed behaviour never ran");
    assert!(swarm.duplicates_sent > 0, "duplicate behaviour never ran");
    assert!(swarm.resumes_sent > 0, "resume behaviour never ran");
    assert!(swarm.teardowns_sent > 0, "teardown behaviour never ran");
    assert!(
        swarm.teardowns_withheld > 0,
        "withheld-teardown behaviour never ran"
    );
    assert_eq!(swarm.read_timeouts, 0, "no client should ever time out");

    // The deployment guarantees.
    let m = &report.metrics;
    assert_eq!(m.leaked_hold_bps, 0, "pending holds leaked");
    assert_eq!(m.leaked_bandwidth_bps, 0, "reservations leaked");

    let c = &report.counters;
    assert!(
        c.queue_peak <= queue_limit as u64,
        "queue grew past its bound: {} > {queue_limit}",
        c.queue_peak
    );
    assert!(
        c.journal_peak <= journal_limit as u64,
        "journal grew past its bound: {} > {journal_limit}",
        c.journal_peak
    );
    assert!(
        c.journal_evicted > 0,
        "a {journal_limit}-entry journal under {} tokens must evict",
        swarm.admits_sent
    );

    // The accounting identity: every validated admit has exactly one
    // explicit fate.
    assert_eq!(
        c.admits_received,
        report.submitted + c.duplicates + c.shed + c.rejected_shutdown,
        "admit accounting does not balance: {c:?} vs submitted {}",
        report.submitted
    );
    // And the wire saw every one of them: what the clients finished
    // writing is exactly what the daemon validated.
    assert_eq!(
        c.admits_received,
        swarm.admits_sent + swarm.duplicates_sent,
        "daemon and swarm disagree on admits: {c:?} vs {swarm:?}"
    );

    // Wire teardown reconciliation: every reclaim the clients saw is
    // counted, and duplicates/unknowns were misses, not errors.
    assert_eq!(c.torn_down, swarm.teardowns_reclaimed);
    assert!(c.torn_down > 0, "no wire teardown ever reclaimed a session");
    assert!(c.resumed > 0, "no resume op reached the daemon");
    assert!(c.wire_errors > 0, "hostile lines must surface as errors");

    // The engine really decided things under all this (client-side
    // `decisions` also counts journal replays, so it is not comparable
    // one-to-one with `report.decided`).
    assert!(report.decided > 0);
    assert!(swarm.decisions > 0);
}
