//! The daemon's wire protocol: line-delimited JSON over TCP or a Unix
//! socket.
//!
//! Each client line is one request object; each response is one line.
//! Requests:
//!
//! ```text
//! {"op":"admit","source":2,"group":0,"demand_bps":64000,"holding_secs":120,"token":"c1-r0"}
//! {"op":"teardown","session":17}
//! {"op":"resume","token":"c1-r0"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses:
//!
//! | request | response |
//! |---------|----------|
//! | `admit` | `{"op":"decision","request":<id>,"token":<str or null>,"at":<sim secs>,"admitted":<bool>,"member":<idx or null>,"session":<raw id or null>,"tries":<n>,"latency_us":<wall μs>}` — or `{"op":"overloaded",...}` when shed |
//! | `teardown` | `{"op":"torn_down","session":<id>,"reclaimed":<bool>}` (`false` for dead/unknown sessions: duplicate and late teardowns are harmless) |
//! | `resume` | the journaled `decision` line if decided; else `{"op":"resumed","token":…,"state":"pending"\|"unknown"}` |
//! | `stats` | `{"op":"stats",…}` — engine snapshot plus queue/shed/journal/window counters |
//! | `shutdown` | `{"op":"shutting_down"}` then a graceful drain; queued-but-unserved admits each get `{"op":"shutting_down","token":…,"rejected":true}` |
//! | malformed | `{"op":"error","reason":<code>,"message":…,"line":<echo>}` (the connection stays open) |
//!
//! Error `reason` codes: `parse` (bad JSON or field values), `unknown_op`,
//! `line_too_long` (the [`MAX_LINE_BYTES`] guard), `out_of_range`
//! (source/group index), `horizon_reached` (fixed-horizon service only).
//!
//! Request ids are the engine's dense per-run arrival counter, assigned
//! in dispatch order — under asynchronous two-phase signalling a decision
//! line may arrive *after* later requests' lines. Clients that need to
//! survive a TCP reset should send a `token` (≤ [`MAX_TOKEN_BYTES`]
//! bytes, unique per request): the daemon journals the verdict under the
//! token, duplicate submits are idempotent, and `resume` on a fresh
//! connection re-delivers it. `latency_us` is wall-clock time from the
//! line entering the admission queue to the decision.

use anycast_dac::experiment::{Decision, ServiceSnapshot};
use anycast_net::Bandwidth;
use anycast_telemetry::json::{parse, JsonValue};
use std::io::{self, BufRead};

/// Hard cap on one request line. Anything longer draws a
/// `line_too_long` error and is discarded without ever being buffered
/// whole, so a hostile writer cannot balloon the reader's memory.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// Hard cap on a correlation token.
pub const MAX_TOKEN_BYTES: usize = 64;

/// How much of an offending line an `error` response echoes back.
const ECHO_BYTES: usize = 120;

/// A structured protocol error: a machine-readable reason code plus a
/// human-readable message. The server echoes the offending line alongside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable reason code (`parse`, `unknown_op`,
    /// `line_too_long`, `out_of_range`, `horizon_reached`).
    pub reason: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// A `parse` error.
    pub fn parse(message: impl Into<String>) -> Self {
        WireError {
            reason: "parse",
            message: message.into(),
        }
    }
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one flow for admission.
    Admit {
        /// Index into the config's source list.
        source_index: usize,
        /// Index into the config's effective groups.
        group_index: usize,
        /// Requested bandwidth.
        demand: Bandwidth,
        /// Flow holding time, seconds.
        holding_secs: f64,
        /// Client-supplied correlation token for reconnect-safe delivery.
        token: Option<String>,
    },
    /// Tear down an admitted session before its holding time expires.
    Teardown {
        /// The raw session id from the admitting `decision` line.
        session: u64,
    },
    /// Retrieve the verdict journaled under a correlation token.
    Resume {
        /// The token the original `admit` carried.
        token: String,
    },
    /// Ask for an operational snapshot.
    Stats,
    /// Ask the daemon to drain and exit gracefully.
    Shutdown,
}

fn field<'a>(obj: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    match obj {
        JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn num_field(obj: &JsonValue, key: &str) -> Result<f64, WireError> {
    match field(obj, key) {
        Some(JsonValue::Num(x)) => Ok(*x),
        Some(_) => Err(WireError::parse(format!("field `{key}` is not a number"))),
        None => Err(WireError::parse(format!("missing field `{key}`"))),
    }
}

fn index_field(obj: &JsonValue, key: &str) -> Result<usize, WireError> {
    let x = num_field(obj, key)?;
    if x.fract() != 0.0 || x < 0.0 {
        return Err(WireError::parse(format!(
            "field `{key}` must be a nonnegative integer, got {x}"
        )));
    }
    Ok(x as usize)
}

fn token_field(obj: &JsonValue) -> Result<Option<String>, WireError> {
    match field(obj, "token") {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Str(s)) => {
            if s.is_empty() || s.len() > MAX_TOKEN_BYTES {
                return Err(WireError::parse(format!(
                    "token must be 1..={MAX_TOKEN_BYTES} bytes, got {}",
                    s.len()
                )));
            }
            Ok(Some(s.clone()))
        }
        Some(_) => Err(WireError::parse("field `token` is not a string")),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// A [`WireError`] with reason `parse` (JSON syntax, missing/invalid
/// fields) or `unknown_op`, suitable for [`error_response`].
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let v = parse(line.trim()).map_err(WireError::parse)?;
    let op = match field(&v, "op") {
        Some(JsonValue::Str(s)) => s.as_str(),
        _ => return Err(WireError::parse("missing string field `op`")),
    };
    match op {
        "admit" => {
            let holding_secs = num_field(&v, "holding_secs")?;
            if !(holding_secs.is_finite() && holding_secs > 0.0) {
                return Err(WireError::parse(format!(
                    "holding_secs must be positive, got {holding_secs}"
                )));
            }
            let demand_bps = num_field(&v, "demand_bps")?;
            if !(demand_bps.is_finite() && demand_bps >= 1.0) {
                return Err(WireError::parse(format!(
                    "demand_bps must be at least 1, got {demand_bps}"
                )));
            }
            Ok(Request::Admit {
                source_index: index_field(&v, "source")?,
                group_index: index_field(&v, "group")?,
                demand: Bandwidth::from_bps(demand_bps as u64),
                holding_secs,
                token: token_field(&v)?,
            })
        }
        "teardown" => {
            let session = num_field(&v, "session")?;
            if session.fract() != 0.0 || session < 0.0 {
                return Err(WireError::parse(format!(
                    "field `session` must be a nonnegative integer, got {session}"
                )));
            }
            Ok(Request::Teardown {
                session: session as u64,
            })
        }
        "resume" => match token_field(&v)? {
            Some(token) => Ok(Request::Resume { token }),
            None => Err(WireError::parse("resume requires a `token`")),
        },
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(WireError {
            reason: "unknown_op",
            message: format!("unknown op `{other}`"),
        }),
    }
}

fn opt_token(token: Option<&str>) -> JsonValue {
    token.map_or(JsonValue::Null, |t| JsonValue::Str(t.into()))
}

/// Renders a `decision` response line (no trailing newline).
pub fn decision_response(d: &Decision, latency_us: u64, token: Option<&str>) -> String {
    JsonValue::obj([
        ("op", JsonValue::Str("decision".into())),
        ("request", JsonValue::Num(d.request as f64)),
        ("token", opt_token(token)),
        ("at", JsonValue::Num(d.at_secs)),
        ("admitted", JsonValue::Bool(d.admitted)),
        (
            "member",
            d.member_index
                .map_or(JsonValue::Null, |m| JsonValue::Num(m as f64)),
        ),
        (
            "session",
            d.session
                .map_or(JsonValue::Null, |s| JsonValue::Num(s.raw() as f64)),
        ),
        ("tries", JsonValue::Num(d.tries as f64)),
        ("latency_us", JsonValue::Num(latency_us as f64)),
    ])
    .render()
}

/// Daemon-side service counters folded into the `stats` response, next to
/// the engine's [`ServiceSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Admits currently waiting in the admission queue.
    pub queue_depth: usize,
    /// The queue's hard bound.
    pub queue_limit: usize,
    /// Admits refused with an `overloaded` response so far.
    pub shed: u64,
    /// Whether the hysteresis shed controller is currently engaged.
    pub shedding: bool,
    /// Tokens currently held in the decision journal.
    pub journal_size: usize,
    /// Duplicate submits answered from the journal.
    pub duplicates: u64,
    /// `resume` ops served.
    pub resumed: u64,
    /// Wire `teardown` ops that reclaimed a live session.
    pub torn_down: u64,
    /// `error` responses sent.
    pub wire_errors: u64,
}

/// Renders a `stats` response line (no trailing newline).
/// `telemetry_dropped` is the stream recorder's drop counter (0 when
/// telemetry is off or lossless).
pub fn stats_response(s: &ServiceSnapshot, telemetry_dropped: u64, d: &ServiceStats) -> String {
    JsonValue::obj([
        ("op", JsonValue::Str("stats".into())),
        ("time_secs", JsonValue::Num(s.time_secs)),
        ("offered", JsonValue::Num(s.offered as f64)),
        ("admitted", JsonValue::Num(s.admitted as f64)),
        ("rejected", JsonValue::Num(s.rejected as f64)),
        ("active_sessions", JsonValue::Num(s.active_sessions as f64)),
        ("reserved_bps", JsonValue::Num(s.reserved_bps as f64)),
        (
            "pending_hold_bps",
            JsonValue::Num(s.pending_hold_bps as f64),
        ),
        ("capacity_bps", JsonValue::Num(s.capacity_bps as f64)),
        (
            "setups_in_flight",
            JsonValue::Num(s.setups_in_flight as f64),
        ),
        ("links", JsonValue::Num(s.links as f64)),
        ("failed_links", JsonValue::Num(s.failed_links as f64)),
        (
            "telemetry_dropped",
            JsonValue::Num(telemetry_dropped as f64),
        ),
        ("window_secs", JsonValue::Num(s.window_secs)),
        ("window_offered", JsonValue::Num(s.window_offered as f64)),
        ("window_admitted", JsonValue::Num(s.window_admitted as f64)),
        ("window_rejected", JsonValue::Num(s.window_rejected as f64)),
        ("queue_depth", JsonValue::Num(d.queue_depth as f64)),
        ("queue_limit", JsonValue::Num(d.queue_limit as f64)),
        ("shed", JsonValue::Num(d.shed as f64)),
        ("shedding", JsonValue::Bool(d.shedding)),
        ("journal_size", JsonValue::Num(d.journal_size as f64)),
        ("duplicates", JsonValue::Num(d.duplicates as f64)),
        ("resumed", JsonValue::Num(d.resumed as f64)),
        ("torn_down", JsonValue::Num(d.torn_down as f64)),
        ("wire_errors", JsonValue::Num(d.wire_errors as f64)),
    ])
    .render()
}

/// Renders an `error` response line (no trailing newline): the reason
/// code, the message, and the offending line echoed back (truncated to
/// [`ECHO_BYTES`] on a character boundary).
pub fn error_response(err: &WireError, line: &str) -> String {
    let mut echo = line.trim();
    if echo.len() > ECHO_BYTES {
        let mut cut = ECHO_BYTES;
        while !echo.is_char_boundary(cut) {
            cut -= 1;
        }
        echo = &echo[..cut];
    }
    JsonValue::obj([
        ("op", JsonValue::Str("error".into())),
        ("reason", JsonValue::Str(err.reason.into())),
        ("message", JsonValue::Str(err.message.clone())),
        ("line", JsonValue::Str(echo.into())),
    ])
    .render()
}

/// Renders an `overloaded` response line (no trailing newline): the admit
/// was shed, never enqueued, and will get no decision. `shedding` tells
/// the client whether the hysteresis controller (vs. the hard queue
/// bound) refused it.
pub fn overloaded_response(token: Option<&str>, queue_depth: usize, shedding: bool) -> String {
    JsonValue::obj([
        ("op", JsonValue::Str("overloaded".into())),
        ("token", opt_token(token)),
        ("queue_depth", JsonValue::Num(queue_depth as f64)),
        ("shedding", JsonValue::Bool(shedding)),
    ])
    .render()
}

/// Renders a `torn_down` response line (no trailing newline).
/// `reclaimed` is `false` when the session was not live — already torn
/// down, departed, or never issued; duplicate teardowns are harmless.
pub fn torn_down_response(session: u64, reclaimed: bool) -> String {
    JsonValue::obj([
        ("op", JsonValue::Str("torn_down".into())),
        ("session", JsonValue::Num(session as f64)),
        ("reclaimed", JsonValue::Bool(reclaimed)),
    ])
    .render()
}

/// Renders a `resumed` status line (no trailing newline) for a token
/// whose verdict is not yet (or no longer) in the journal: `state` is
/// `pending` (still queued or in flight — the decision will be delivered
/// to *this* connection) or `unknown` (never seen or evicted).
pub fn resumed_response(token: &str, state: &str) -> String {
    JsonValue::obj([
        ("op", JsonValue::Str("resumed".into())),
        ("token", JsonValue::Str(token.into())),
        ("state", JsonValue::Str(state.into())),
    ])
    .render()
}

/// Renders the `shutting_down` acknowledgement line (no trailing newline).
pub fn shutdown_response() -> String {
    JsonValue::obj([("op", JsonValue::Str("shutting_down".into()))]).render()
}

/// Renders the `shutting_down` rejection line (no trailing newline) sent
/// to each queued-but-unserved admit when the daemon drains its admission
/// queue at shutdown: the request was *not* decided and must be retried
/// elsewhere.
pub fn shutdown_rejection(token: Option<&str>) -> String {
    JsonValue::obj([
        ("op", JsonValue::Str("shutting_down".into())),
        ("token", opt_token(token)),
        ("rejected", JsonValue::Bool(true)),
    ])
    .render()
}

/// One line read by [`read_line_bounded`].
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// End of stream with no pending bytes.
    Eof,
    /// A complete line (without its newline; possibly the unterminated
    /// tail of the stream).
    Line(String),
    /// A line longer than the limit: `echo` is its (truncated) head,
    /// `len` the total bytes discarded. The stream is positioned after
    /// the line's newline.
    Overlong {
        /// Truncated head of the discarded line, for the error echo.
        echo: String,
        /// Total bytes the line held (excluding the newline).
        len: usize,
    },
}

/// Reads one `\n`-terminated line, buffering at most `max_bytes` of it.
/// A longer line is consumed and discarded — the reader never holds more
/// than `max_bytes` in memory, whatever a hostile client streams.
///
/// # Errors
///
/// Propagates I/O errors from the underlying reader.
pub fn read_line_bounded<R: BufRead + ?Sized>(
    reader: &mut R,
    max_bytes: usize,
) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut len = 0usize;
    let mut terminated = false;
    loop {
        let (consumed, done) = {
            let chunk = match reader.fill_buf() {
                Ok(c) => c,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                (0, true)
            } else {
                let newline = chunk.iter().position(|&b| b == b'\n');
                let part = &chunk[..newline.unwrap_or(chunk.len())];
                len += part.len();
                // Keep at most max_bytes buffered; the rest of an
                // overlong line is counted and dropped.
                let room = max_bytes.saturating_sub(buf.len());
                buf.extend_from_slice(&part[..part.len().min(room)]);
                terminated = newline.is_some();
                (
                    part.len() + usize::from(newline.is_some()),
                    newline.is_some(),
                )
            }
        };
        reader.consume(consumed);
        if done {
            break;
        }
    }
    if len == 0 && !terminated {
        return Ok(LineRead::Eof);
    }
    let text = String::from_utf8_lossy(&buf).into_owned();
    if len > max_bytes {
        let mut echo = text;
        let mut cut = echo.len().min(ECHO_BYTES);
        while !echo.is_char_boundary(cut) {
            cut -= 1;
        }
        echo.truncate(cut);
        Ok(LineRead::Overlong { echo, len })
    } else {
        Ok(LineRead::Line(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_all_ops() -> Result<(), WireError> {
        assert_eq!(
            parse_request(
                "{\"op\":\"admit\",\"source\":2,\"group\":0,\"demand_bps\":64000,\"holding_secs\":120}"
            )?,
            Request::Admit {
                source_index: 2,
                group_index: 0,
                demand: Bandwidth::from_bps(64_000),
                holding_secs: 120.0,
                token: None,
            }
        );
        assert_eq!(
            parse_request(
                "{\"op\":\"admit\",\"source\":2,\"group\":0,\"demand_bps\":64000,\
                 \"holding_secs\":120,\"token\":\"c1-r7\"}"
            )?,
            Request::Admit {
                source_index: 2,
                group_index: 0,
                demand: Bandwidth::from_bps(64_000),
                holding_secs: 120.0,
                token: Some("c1-r7".into()),
            }
        );
        assert_eq!(
            parse_request("{\"op\":\"teardown\",\"session\":17}")?,
            Request::Teardown { session: 17 }
        );
        assert_eq!(
            parse_request("{\"op\":\"resume\",\"token\":\"c1-r7\"}")?,
            Request::Resume {
                token: "c1-r7".into()
            }
        );
        assert_eq!(parse_request("{\"op\":\"stats\"}")?, Request::Stats);
        assert_eq!(parse_request(" {\"op\":\"shutdown\"} ")?, Request::Shutdown);
        Ok(())
    }

    #[test]
    fn rejects_malformed_requests_with_reason_codes() {
        assert_eq!(parse_request("not json").unwrap_err().reason, "parse");
        assert_eq!(
            parse_request("{\"op\":\"frobnicate\"}").unwrap_err().reason,
            "unknown_op"
        );
        assert_eq!(parse_request("{\"source\":1}").unwrap_err().reason, "parse");
        // Negative, zero or fractional-index fields.
        for bad in [
            "{\"op\":\"admit\",\"source\":-1,\"group\":0,\"demand_bps\":1,\"holding_secs\":1}",
            "{\"op\":\"admit\",\"source\":0.5,\"group\":0,\"demand_bps\":1,\"holding_secs\":1}",
            "{\"op\":\"admit\",\"source\":0,\"group\":0,\"demand_bps\":0,\"holding_secs\":1}",
            "{\"op\":\"admit\",\"source\":0,\"group\":0,\"demand_bps\":1,\"holding_secs\":0}",
            "{\"op\":\"teardown\",\"session\":-3}",
            "{\"op\":\"teardown\"}",
            "{\"op\":\"resume\"}",
            "{\"op\":\"resume\",\"token\":\"\"}",
        ] {
            assert_eq!(parse_request(bad).unwrap_err().reason, "parse", "{bad}");
        }
        // Token cap.
        let long = format!(
            "{{\"op\":\"admit\",\"source\":0,\"group\":0,\"demand_bps\":1,\
             \"holding_secs\":1,\"token\":\"{}\"}}",
            "x".repeat(MAX_TOKEN_BYTES + 1)
        );
        assert_eq!(parse_request(&long).unwrap_err().reason, "parse");
    }

    #[test]
    fn responses_render_and_parse_back() -> Result<(), String> {
        let d = Decision {
            request: 7,
            at_secs: 12.5,
            admitted: true,
            member_index: Some(1),
            session: Some(anycast_rsvp::SessionId::for_tests(42)),
            tries: 2,
        };
        let line = decision_response(&d, 830, Some("c0-r7"));
        let v = parse(&line)?;
        assert_eq!(field(&v, "request"), Some(&JsonValue::Num(7.0)));
        assert_eq!(field(&v, "session"), Some(&JsonValue::Num(42.0)));
        assert_eq!(field(&v, "admitted"), Some(&JsonValue::Bool(true)));
        assert_eq!(field(&v, "token"), Some(&JsonValue::Str("c0-r7".into())));

        let rejected = Decision {
            request: 8,
            at_secs: 13.0,
            admitted: false,
            member_index: None,
            session: None,
            tries: 3,
        };
        let v = parse(&decision_response(&rejected, 12, None))?;
        assert_eq!(field(&v, "member"), Some(&JsonValue::Null));
        assert_eq!(field(&v, "token"), Some(&JsonValue::Null));

        let v = parse(&error_response(
            &WireError::parse("bad \"line\""),
            "{\"op\":\"nope",
        ))?;
        assert_eq!(field(&v, "reason"), Some(&JsonValue::Str("parse".into())));
        assert_eq!(
            field(&v, "line"),
            Some(&JsonValue::Str("{\"op\":\"nope".into()))
        );

        let v = parse(&overloaded_response(Some("t"), 512, true))?;
        assert_eq!(field(&v, "queue_depth"), Some(&JsonValue::Num(512.0)));
        assert_eq!(field(&v, "shedding"), Some(&JsonValue::Bool(true)));

        let v = parse(&torn_down_response(42, true))?;
        assert_eq!(field(&v, "reclaimed"), Some(&JsonValue::Bool(true)));

        let v = parse(&resumed_response("t", "pending"))?;
        assert_eq!(field(&v, "state"), Some(&JsonValue::Str("pending".into())));

        assert!(parse(&shutdown_response()).is_ok());
        let v = parse(&shutdown_rejection(Some("t")))?;
        assert_eq!(field(&v, "rejected"), Some(&JsonValue::Bool(true)));
        Ok(())
    }

    #[test]
    fn error_echo_truncates_on_char_boundary() {
        let line = format!("{}é", "a".repeat(ECHO_BYTES - 1));
        let rendered = error_response(&WireError::parse("x"), &line);
        let v = parse(&rendered).unwrap();
        match field(&v, "line") {
            Some(JsonValue::Str(s)) => assert_eq!(s.len(), ECHO_BYTES - 1),
            other => panic!("bad echo: {other:?}"),
        }
    }

    #[test]
    fn bounded_reader_handles_normal_overlong_and_eof() {
        let data = format!("\nshort\n{}\ntail", "y".repeat(100));
        let mut r = BufReader::with_capacity(16, data.as_bytes());
        // A bare newline is an empty line, not EOF.
        assert_eq!(
            read_line_bounded(&mut r, 32).unwrap(),
            LineRead::Line(String::new())
        );
        assert_eq!(
            read_line_bounded(&mut r, 32).unwrap(),
            LineRead::Line("short".into())
        );
        match read_line_bounded(&mut r, 32).unwrap() {
            LineRead::Overlong { echo, len } => {
                assert_eq!(len, 100);
                assert_eq!(echo, "y".repeat(32));
            }
            other => panic!("expected overlong, got {other:?}"),
        }
        // The unterminated tail still comes through as a line, then EOF.
        assert_eq!(
            read_line_bounded(&mut r, 32).unwrap(),
            LineRead::Line("tail".into())
        );
        assert_eq!(read_line_bounded(&mut r, 32).unwrap(), LineRead::Eof);
    }
}
