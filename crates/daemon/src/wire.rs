//! The daemon's wire protocol: line-delimited JSON over TCP or a Unix
//! socket.
//!
//! Each client line is one request object; each response is one line.
//! Requests:
//!
//! ```text
//! {"op":"admit","source":2,"group":0,"demand_bps":64000,"holding_secs":120}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses:
//!
//! | request | response |
//! |---------|----------|
//! | `admit` | `{"op":"decision","request":<id>,"at":<sim secs>,"admitted":<bool>,"member":<idx or null>,"session":<raw id or null>,"tries":<n>,"latency_us":<wall μs>}` |
//! | `stats` | `{"op":"stats","time_secs":…,"offered":…,"admitted":…,"rejected":…,"active_sessions":…,"reserved_bps":…,"pending_hold_bps":…,"capacity_bps":…,"setups_in_flight":…,"links":…,"failed_links":…,"telemetry_dropped":…}` |
//! | `shutdown` | `{"op":"shutting_down"}` then a graceful drain |
//! | malformed | `{"op":"error","message":…}` (the connection stays open) |
//!
//! Request ids are the engine's dense per-run arrival counter, assigned
//! in submission order — under asynchronous two-phase signalling a
//! decision line may arrive *after* later requests' lines, and the id is
//! how clients correlate. `latency_us` is wall-clock time from submission
//! to decision as measured by the daemon.

use anycast_dac::experiment::{Decision, ServiceSnapshot};
use anycast_net::Bandwidth;
use anycast_telemetry::json::{parse, JsonValue};

/// One parsed client request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// Submit one flow for admission.
    Admit {
        /// Index into the config's source list.
        source_index: usize,
        /// Index into the config's effective groups.
        group_index: usize,
        /// Requested bandwidth.
        demand: Bandwidth,
        /// Flow holding time, seconds.
        holding_secs: f64,
    },
    /// Ask for an operational snapshot.
    Stats,
    /// Ask the daemon to drain and exit gracefully.
    Shutdown,
}

fn field<'a>(obj: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    match obj {
        JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn num_field(obj: &JsonValue, key: &str) -> Result<f64, String> {
    match field(obj, key) {
        Some(JsonValue::Num(x)) => Ok(*x),
        Some(_) => Err(format!("field `{key}` is not a number")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn index_field(obj: &JsonValue, key: &str) -> Result<usize, String> {
    let x = num_field(obj, key)?;
    if x.fract() != 0.0 || x < 0.0 {
        return Err(format!(
            "field `{key}` must be a nonnegative integer, got {x}"
        ));
    }
    Ok(x as usize)
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message for JSON syntax errors, unknown ops or
/// missing/invalid fields — suitable for an `error` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line.trim())?;
    let op = match field(&v, "op") {
        Some(JsonValue::Str(s)) => s.as_str(),
        _ => return Err("missing string field `op`".into()),
    };
    match op {
        "admit" => {
            let holding_secs = num_field(&v, "holding_secs")?;
            if !(holding_secs.is_finite() && holding_secs > 0.0) {
                return Err(format!("holding_secs must be positive, got {holding_secs}"));
            }
            let demand_bps = num_field(&v, "demand_bps")?;
            if !(demand_bps.is_finite() && demand_bps >= 1.0) {
                return Err(format!("demand_bps must be at least 1, got {demand_bps}"));
            }
            Ok(Request::Admit {
                source_index: index_field(&v, "source")?,
                group_index: index_field(&v, "group")?,
                demand: Bandwidth::from_bps(demand_bps as u64),
                holding_secs,
            })
        }
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Renders a `decision` response line (no trailing newline).
pub fn decision_response(d: &Decision, latency_us: u64) -> String {
    JsonValue::obj([
        ("op", JsonValue::Str("decision".into())),
        ("request", JsonValue::Num(d.request as f64)),
        ("at", JsonValue::Num(d.at_secs)),
        ("admitted", JsonValue::Bool(d.admitted)),
        (
            "member",
            d.member_index
                .map_or(JsonValue::Null, |m| JsonValue::Num(m as f64)),
        ),
        (
            "session",
            d.session
                .map_or(JsonValue::Null, |s| JsonValue::Num(s.raw() as f64)),
        ),
        ("tries", JsonValue::Num(d.tries as f64)),
        ("latency_us", JsonValue::Num(latency_us as f64)),
    ])
    .render()
}

/// Renders a `stats` response line (no trailing newline).
/// `telemetry_dropped` is the stream recorder's drop counter (0 when
/// telemetry is off or lossless).
pub fn stats_response(s: &ServiceSnapshot, telemetry_dropped: u64) -> String {
    JsonValue::obj([
        ("op", JsonValue::Str("stats".into())),
        ("time_secs", JsonValue::Num(s.time_secs)),
        ("offered", JsonValue::Num(s.offered as f64)),
        ("admitted", JsonValue::Num(s.admitted as f64)),
        ("rejected", JsonValue::Num(s.rejected as f64)),
        ("active_sessions", JsonValue::Num(s.active_sessions as f64)),
        ("reserved_bps", JsonValue::Num(s.reserved_bps as f64)),
        (
            "pending_hold_bps",
            JsonValue::Num(s.pending_hold_bps as f64),
        ),
        ("capacity_bps", JsonValue::Num(s.capacity_bps as f64)),
        (
            "setups_in_flight",
            JsonValue::Num(s.setups_in_flight as f64),
        ),
        ("links", JsonValue::Num(s.links as f64)),
        ("failed_links", JsonValue::Num(s.failed_links as f64)),
        (
            "telemetry_dropped",
            JsonValue::Num(telemetry_dropped as f64),
        ),
    ])
    .render()
}

/// Renders an `error` response line (no trailing newline).
pub fn error_response(message: &str) -> String {
    JsonValue::obj([
        ("op", JsonValue::Str("error".into())),
        ("message", JsonValue::Str(message.into())),
    ])
    .render()
}

/// Renders the `shutting_down` acknowledgement line (no trailing newline).
pub fn shutdown_response() -> String {
    JsonValue::obj([("op", JsonValue::Str("shutting_down".into()))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_ops() -> Result<(), String> {
        assert_eq!(
            parse_request(
                "{\"op\":\"admit\",\"source\":2,\"group\":0,\"demand_bps\":64000,\"holding_secs\":120}"
            )?,
            Request::Admit {
                source_index: 2,
                group_index: 0,
                demand: Bandwidth::from_bps(64_000),
                holding_secs: 120.0,
            }
        );
        assert_eq!(parse_request("{\"op\":\"stats\"}")?, Request::Stats);
        assert_eq!(parse_request(" {\"op\":\"shutdown\"} ")?, Request::Shutdown);
        Ok(())
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"frobnicate\"}").is_err());
        assert!(parse_request("{\"source\":1}").is_err());
        // Negative, zero or fractional-index fields.
        assert!(parse_request(
            "{\"op\":\"admit\",\"source\":-1,\"group\":0,\"demand_bps\":1,\"holding_secs\":1}"
        )
        .is_err());
        assert!(parse_request(
            "{\"op\":\"admit\",\"source\":0.5,\"group\":0,\"demand_bps\":1,\"holding_secs\":1}"
        )
        .is_err());
        assert!(parse_request(
            "{\"op\":\"admit\",\"source\":0,\"group\":0,\"demand_bps\":0,\"holding_secs\":1}"
        )
        .is_err());
        assert!(parse_request(
            "{\"op\":\"admit\",\"source\":0,\"group\":0,\"demand_bps\":1,\"holding_secs\":0}"
        )
        .is_err());
    }

    #[test]
    fn responses_render_and_parse_back() -> Result<(), String> {
        let d = Decision {
            request: 7,
            at_secs: 12.5,
            admitted: true,
            member_index: Some(1),
            session: Some(anycast_rsvp::SessionId::for_tests(42)),
            tries: 2,
        };
        let line = decision_response(&d, 830);
        let v = parse(&line)?;
        assert_eq!(field(&v, "request"), Some(&JsonValue::Num(7.0)));
        assert_eq!(field(&v, "session"), Some(&JsonValue::Num(42.0)));
        assert_eq!(field(&v, "admitted"), Some(&JsonValue::Bool(true)));

        let rejected = Decision {
            request: 8,
            at_secs: 13.0,
            admitted: false,
            member_index: None,
            session: None,
            tries: 3,
        };
        let v = parse(&decision_response(&rejected, 12))?;
        assert_eq!(field(&v, "member"), Some(&JsonValue::Null));

        assert!(parse(&error_response("bad \"line\"")).is_ok());
        assert!(parse(&shutdown_response()).is_ok());
        Ok(())
    }
}
