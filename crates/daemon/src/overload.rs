//! Overload protection for the service loop: a bounded admission queue
//! with per-connection fairness, and a hysteresis shed controller driven
//! by queue depth and decision latency.
//!
//! The paper's controllers assume a well-behaved arrival process; a
//! deployed daemon cannot. Two mechanisms keep an overloaded engine
//! honest instead of letting it collapse:
//!
//! * **The [`AdmissionQueue`]** bounds how much work may wait for the
//!   engine thread — globally and per connection, so one firehose client
//!   cannot starve the rest. Dispatch is round-robin across connections
//!   that have queued work. A full queue refuses the admit outright; the
//!   server answers with an explicit `overloaded` line, never a silent
//!   drop.
//! * **The [`ShedController`]** engages *before* the hard bound: once
//!   queue depth or the decision-latency EWMA crosses its high
//!   watermark, new admits are shed until both fall back below the low
//!   watermarks. The hysteresis gap keeps the daemon from oscillating
//!   admit/shed at the boundary, and shedding early is what keeps p99
//!   decision latency bounded under sustained overload (the `bench_pr9`
//!   claim).

use anycast_net::Bandwidth;
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Overload-protection knobs for the service loop.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadOptions {
    /// Global admission-queue bound.
    pub queue_limit: usize,
    /// Per-connection admission-queue bound (fair-share cap).
    pub per_conn_limit: usize,
    /// How many queued admits one engine tick may dispatch.
    pub dispatch_per_tick: usize,
    /// Decision-journal bound (correlation tokens retained).
    pub journal_limit: usize,
    /// Whether the hysteresis shed controller is active. Off, only the
    /// hard queue bound sheds — the configuration `bench_pr9` contrasts.
    pub shed: bool,
    /// Shed-controller watermarks.
    pub shed_config: ShedConfig,
    /// Busy-work burned per dispatched admit. Zero in production; the
    /// overload benchmarks raise it to give the engine a known capacity
    /// so 1×/2×/4× driving rates mean something.
    pub admit_spin: Duration,
}

impl Default for OverloadOptions {
    fn default() -> Self {
        OverloadOptions {
            queue_limit: 1024,
            per_conn_limit: 128,
            dispatch_per_tick: 256,
            journal_limit: 4096,
            shed: true,
            shed_config: ShedConfig::default(),
            admit_spin: Duration::ZERO,
        }
    }
}

impl OverloadOptions {
    /// Sets the queue bound and rescales the shed watermarks to it
    /// (enter at 3/4, exit at 1/4; latency watermarks unchanged).
    pub fn with_queue_limit(mut self, limit: usize) -> Self {
        let depths = ShedConfig::for_queue_limit(limit);
        self.queue_limit = limit;
        self.shed_config.enter_depth = depths.enter_depth;
        self.shed_config.exit_depth = depths.exit_depth;
        self
    }
}

/// One admit waiting for the engine thread, stamped at enqueue so
/// decision latency includes its queueing delay.
#[derive(Debug)]
pub struct QueuedAdmit {
    /// Connection that submitted it.
    pub conn: u64,
    /// Client correlation token, if any.
    pub token: Option<String>,
    /// Index into the config's source list.
    pub source_index: usize,
    /// Index into the config's effective groups.
    pub group_index: usize,
    /// Requested bandwidth.
    pub demand: Bandwidth,
    /// Flow holding time, seconds.
    pub holding_secs: f64,
    /// When the line entered the queue.
    pub received: Instant,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRefusal {
    /// The global bound is hit.
    QueueFull,
    /// This connection already has its fair share queued.
    ConnFull,
}

/// A bounded admission queue, round-robin fair across connections.
#[derive(Debug)]
pub struct AdmissionQueue {
    limit: usize,
    per_conn_limit: usize,
    len: usize,
    queues: HashMap<u64, VecDeque<QueuedAdmit>>,
    /// Connections with queued work, in round-robin service order.
    rotation: VecDeque<u64>,
}

impl AdmissionQueue {
    /// An empty queue with the given global and per-connection bounds.
    ///
    /// # Panics
    ///
    /// Panics if either bound is zero.
    pub fn new(limit: usize, per_conn_limit: usize) -> Self {
        assert!(limit > 0, "queue limit must be positive");
        assert!(per_conn_limit > 0, "per-connection limit must be positive");
        AdmissionQueue {
            limit,
            per_conn_limit,
            len: 0,
            queues: HashMap::new(),
            rotation: VecDeque::new(),
        }
    }

    /// Queued admits right now.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The global bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Enqueues `item`, or refuses it (returning it back so the caller
    /// can answer the right connection).
    ///
    /// # Errors
    ///
    /// [`PushRefusal::QueueFull`] at the global bound,
    /// [`PushRefusal::ConnFull`] at the connection's.
    pub fn push(&mut self, item: QueuedAdmit) -> Result<(), (QueuedAdmit, PushRefusal)> {
        if self.len >= self.limit {
            return Err((item, PushRefusal::QueueFull));
        }
        let per_conn = self.queues.entry(item.conn).or_default();
        // A connection at its bound necessarily has a nonempty queue, so
        // the entry just created (if any) is never left behind empty.
        if per_conn.len() >= self.per_conn_limit {
            return Err((item, PushRefusal::ConnFull));
        }
        if per_conn.is_empty() {
            self.rotation.push_back(item.conn);
        }
        per_conn.push_back(item);
        self.len += 1;
        Ok(())
    }

    /// Dequeues the next admit, round-robin across connections: each pop
    /// serves the connection at the head of the rotation and sends it to
    /// the back if it still has work.
    pub fn pop(&mut self) -> Option<QueuedAdmit> {
        let conn = self.rotation.pop_front()?;
        let queue = self
            .queues
            .get_mut(&conn)
            .expect("rotation only holds connections with queues");
        let item = queue
            .pop_front()
            .expect("rotation only holds nonempty queues");
        if queue.is_empty() {
            self.queues.remove(&conn);
        } else {
            self.rotation.push_back(conn);
        }
        self.len -= 1;
        Some(item)
    }
}

/// Shed-controller watermarks. Defaults suit the default queue bound of
/// 1024: engage at 3/4 depth or 250 ms smoothed decision latency,
/// disengage only once depth is below 1/4 *and* latency below 50 ms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedConfig {
    /// Queue depth at or above which shedding engages.
    pub enter_depth: usize,
    /// Queue depth at or below which shedding may disengage.
    pub exit_depth: usize,
    /// Smoothed decision latency at or above which shedding engages.
    pub enter_latency: Duration,
    /// Smoothed decision latency at or below which shedding may disengage.
    pub exit_latency: Duration,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig::for_queue_limit(1024)
    }
}

impl ShedConfig {
    /// Watermarks scaled to a queue bound: enter at 3/4, exit at 1/4.
    pub fn for_queue_limit(limit: usize) -> Self {
        ShedConfig {
            enter_depth: (limit * 3 / 4).max(1),
            exit_depth: limit / 4,
            enter_latency: Duration::from_millis(250),
            exit_latency: Duration::from_millis(50),
        }
    }
}

/// EWMA weight for newly observed decision latencies (~last 20 decisions
/// dominate). Heavy enough to react within a tick's worth of decisions,
/// light enough that one slow decision cannot flap the controller.
const LATENCY_EWMA_ALPHA: f64 = 0.1;

/// Hysteresis load shedding: sheds while the service is over its high
/// watermarks, readmits only when comfortably below the low ones.
#[derive(Debug)]
pub struct ShedController {
    config: ShedConfig,
    latency_ewma_us: f64,
    shedding: bool,
    engaged: u64,
}

impl ShedController {
    /// A disengaged controller.
    pub fn new(config: ShedConfig) -> Self {
        ShedController {
            config,
            latency_ewma_us: 0.0,
            shedding: false,
            engaged: 0,
        }
    }

    /// Folds one decision's wall-clock latency into the EWMA.
    pub fn observe_latency(&mut self, latency_us: u64) {
        self.latency_ewma_us = (1.0 - LATENCY_EWMA_ALPHA) * self.latency_ewma_us
            + LATENCY_EWMA_ALPHA * latency_us as f64;
    }

    /// Re-evaluates the hysteresis against the current queue depth and
    /// returns whether the daemon is now shedding.
    pub fn update(&mut self, queue_depth: usize) -> bool {
        let lat = self.latency_ewma_us;
        if self.shedding {
            if queue_depth <= self.config.exit_depth
                && lat <= self.config.exit_latency.as_micros() as f64
            {
                self.shedding = false;
            }
        } else if queue_depth >= self.config.enter_depth
            || lat >= self.config.enter_latency.as_micros() as f64
        {
            self.shedding = true;
            self.engaged += 1;
        }
        self.shedding
    }

    /// Whether shedding is currently engaged.
    pub fn is_shedding(&self) -> bool {
        self.shedding
    }

    /// How many times shedding has engaged (not per-request; per
    /// excursion over the high watermarks).
    pub fn times_engaged(&self) -> u64 {
        self.engaged
    }

    /// The current decision-latency EWMA, microseconds.
    pub fn latency_ewma_us(&self) -> f64 {
        self.latency_ewma_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit(conn: u64) -> QueuedAdmit {
        QueuedAdmit {
            conn,
            token: None,
            source_index: 0,
            group_index: 0,
            demand: Bandwidth::from_bps(1),
            holding_secs: 1.0,
            received: Instant::now(),
        }
    }

    #[test]
    fn queue_round_robins_across_connections() {
        let mut q = AdmissionQueue::new(16, 8);
        // Connection 0 floods, connections 1 and 2 each queue one.
        for _ in 0..4 {
            q.push(admit(0)).unwrap();
        }
        q.push(admit(1)).unwrap();
        q.push(admit(2)).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|a| a.conn).collect();
        // 1 and 2 are served within the first rotation, not after the
        // flood: one item per connection per round.
        assert_eq!(order, vec![0, 1, 2, 0, 0, 0]);
        assert!(q.is_empty());
    }

    #[test]
    fn queue_enforces_both_bounds() {
        let mut q = AdmissionQueue::new(4, 2);
        q.push(admit(0)).unwrap();
        q.push(admit(0)).unwrap();
        // Per-connection bound first.
        let (back, why) = q.push(admit(0)).unwrap_err();
        assert_eq!(why, PushRefusal::ConnFull);
        assert_eq!(back.conn, 0);
        q.push(admit(1)).unwrap();
        q.push(admit(2)).unwrap();
        // Global bound.
        let (_, why) = q.push(admit(3)).unwrap_err();
        assert_eq!(why, PushRefusal::QueueFull);
        assert_eq!(q.len(), 4);
        // Refusals leave no ghost per-connection queues behind.
        while q.pop().is_some() {}
        assert!(q.queues.is_empty() && q.rotation.is_empty());
    }

    #[test]
    fn shed_hysteresis_engages_and_releases() {
        let mut s = ShedController::new(ShedConfig {
            enter_depth: 8,
            exit_depth: 2,
            enter_latency: Duration::from_millis(100),
            exit_latency: Duration::from_millis(10),
        });
        assert!(!s.update(7));
        assert!(s.update(8), "enter on depth");
        // Between the watermarks: still shedding (hysteresis).
        assert!(s.update(5));
        assert!(!s.update(2), "exit only at the low watermark");
        assert_eq!(s.times_engaged(), 1);

        // Latency alone engages it too.
        for _ in 0..200 {
            s.observe_latency(200_000);
        }
        assert!(s.update(0), "enter on latency EWMA");
        for _ in 0..200 {
            s.observe_latency(0);
        }
        assert!(!s.update(0));
        assert_eq!(s.times_engaged(), 2);
    }
}
