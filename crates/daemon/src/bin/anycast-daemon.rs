//! `anycast-daemon` — run the DAC admission controller as a standalone
//! service on the paper's MCI backbone scenario.
//!
//! ```text
//! anycast-daemon --listen 127.0.0.1:4730 [options]
//! anycast-daemon --unix /run/anycast.sock [options]
//! ```
//!
//! This binary is the minimal deployment shell: MCI topology, paper
//! default group/sources, a small flag set. The `anycast serve`
//! subcommand exposes the full experiment configuration surface
//! (topologies, fault plans, two-phase signalling, …) over the same
//! service loop.

use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_daemon::{install_signal_handler, BoundServer, Endpoint, ServeOptions, ShutdownFlag};
use anycast_net::topologies;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: anycast-daemon (--listen ADDR | --unix PATH) [options]

Runs the DAC admission controller as a long-lived service on the MCI
backbone scenario, speaking line-delimited JSON (admit/stats/shutdown).

options:
  --listen ADDR    TCP listen address, e.g. 127.0.0.1:4730 (port 0 = any)
  --unix PATH      Unix-domain socket path (instead of --listen)
  --system NAME    ed | wddh | wddb | sp | gdi (default wddh)
  --r N            retrial limit (default 2)
  --seed N         PRNG seed for selection/fault streams (default 1)
  --horizon SECS   service lifetime in simulated seconds (default 86400)
  --speed X        simulated seconds per real second (default 1)
  --tick-ms MS     engine tick while idle (default 5)
  --telemetry PATH stream telemetry events to PATH as JSONL
  --batch          batched same-quantum admission
  --window SECS    rolling-horizon mode: serve forever, report trailing
                   admission stats over the last SECS simulated seconds
                   (--horizon is ignored)
  --queue-limit N  admission queue bound; shed watermarks scale with it
                   (default 1024)
  --no-shed        disable the hysteresis shed controller (the hard queue
                   bound still refuses admits when full)

SIGINT/SIGTERM or a {\"op\":\"shutdown\"} request drains in-flight work,
rejects queued-but-unserved admits, releases pending holds and exits
after printing final metrics and service counters.";

fn parse_flags(argv: Vec<String>) -> Result<(Endpoint, ExperimentConfig, ServeOptions), String> {
    let mut listen: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut system = "wddh".to_string();
    let mut r: u32 = 2;
    let mut seed: u64 = 1;
    let mut horizon: f64 = 86_400.0;
    let mut options = ServeOptions::default();
    let mut batch = false;

    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--listen" => listen = Some(value("--listen")?),
            "--unix" => unix = Some(value("--unix")?),
            "--system" => system = value("--system")?,
            "--r" => r = parse_num(&value("--r")?, "--r")?,
            "--seed" => seed = parse_num(&value("--seed")?, "--seed")?,
            "--horizon" => horizon = parse_num(&value("--horizon")?, "--horizon")?,
            "--speed" => options.speed = parse_num(&value("--speed")?, "--speed")?,
            "--tick-ms" => {
                options.tick = Duration::from_millis(parse_num(&value("--tick-ms")?, "--tick-ms")?);
            }
            "--telemetry" => options.telemetry = Some(value("--telemetry")?.into()),
            "--batch" => batch = true,
            "--window" => {
                let secs: f64 = parse_num(&value("--window")?, "--window")?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(format!("--window must be positive seconds, got {secs}"));
                }
                options.window_secs = Some(secs);
            }
            "--queue-limit" => {
                let limit: usize = parse_num(&value("--queue-limit")?, "--queue-limit")?;
                if limit == 0 {
                    return Err("--queue-limit must be positive".into());
                }
                options.overload = options.overload.with_queue_limit(limit);
            }
            "--no-shed" => options.overload.shed = false,
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    let endpoint = match (listen, unix) {
        (Some(addr), None) => Endpoint::Tcp(addr),
        (None, Some(path)) => Endpoint::Unix(path.into()),
        (Some(_), Some(_)) => return Err("--listen and --unix are mutually exclusive".into()),
        (None, None) => return Err(format!("missing --listen or --unix\n\n{USAGE}")),
    };
    let system = match system.as_str() {
        "ed" => SystemSpec::dac(PolicySpec::Ed, r),
        "wddh" => SystemSpec::dac(PolicySpec::wd_dh_default(), r),
        "wddb" => SystemSpec::dac(PolicySpec::WdDb, r),
        "sp" => SystemSpec::ShortestPath,
        "gdi" => SystemSpec::GlobalDynamic,
        other => return Err(format!("unknown system `{other}`")),
    };
    if !(horizon.is_finite() && horizon > 0.0) {
        return Err(format!("--horizon must be positive seconds, got {horizon}"));
    }
    if !(options.speed.is_finite() && options.speed > 0.0) {
        return Err(format!("--speed must be positive, got {}", options.speed));
    }
    // A live service measures from t=0: no warm-up discard.
    let config = ExperimentConfig::paper_defaults(1.0, system)
        .with_seed(seed)
        .with_warmup_secs(0.0)
        .with_measure_secs(horizon)
        .with_batching(batch);
    Ok((endpoint, config, options))
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("{flag}: cannot parse `{raw}`: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("anycast-daemon: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let (endpoint, config, options) = parse_flags(argv)?;
    let topo = topologies::mci();
    let shutdown = ShutdownFlag::new();
    if !install_signal_handler() {
        eprintln!("anycast-daemon: signal handler not installed; use the wire shutdown op");
    }
    let server = BoundServer::bind(&endpoint).map_err(|e| format!("bind {endpoint:?}: {e}"))?;
    match (&endpoint, server.tcp_addr()) {
        (_, Some(addr)) => println!("listening on tcp {addr}"),
        (Endpoint::Unix(path), None) => println!("listening on unix {}", path.display()),
        _ => {}
    }
    println!(
        "system {} seed {} speed {}x horizon {}s",
        config.system.label(),
        config.seed,
        options.speed,
        config.measure_secs
    );
    let report = server
        .run(&topo, &config, &options, shutdown)
        .map_err(|e| format!("serve: {e}"))?;
    println!(
        "served {} requests, {} decisions routed",
        report.submitted, report.decided
    );
    let c = &report.counters;
    println!(
        "service: {} admits received, {} shed, {} duplicates, {} rejected at shutdown",
        c.admits_received, c.shed, c.duplicates, c.rejected_shutdown
    );
    println!(
        "service: {} resumed, {} torn down ({} misses), {} wire errors",
        c.resumed, c.torn_down, c.teardown_misses, c.wire_errors
    );
    println!(
        "service: queue peak {} journal peak {} (evicted {}), shed engaged {}x",
        c.queue_peak, c.journal_peak, c.journal_evicted, c.shed_engaged
    );
    if options.telemetry.is_some() {
        println!(
            "telemetry {} events written, {} dropped",
            report.telemetry_written, report.telemetry_dropped
        );
    }
    let m = &report.metrics;
    println!(
        "offered {} admitted {} AP {:.6}",
        m.offered, m.admitted, m.admission_probability
    );
    if m.leaked_hold_bps != 0 || m.leaked_bandwidth_bps != 0 {
        return Err(format!(
            "ledger leak at shutdown: {} bps holds, {} bps reservations",
            m.leaked_hold_bps, m.leaked_bandwidth_bps
        ));
    }
    Ok(())
}
