//! `anycast-daemon`: the DAC controller as a long-lived online service.
//!
//! The offline crates answer "what would this admission control system
//! have done over a whole scenario?". This crate answers "what does it do
//! *right now*?" — the same engine, the same GDI/SP/two-phase machinery,
//! run as a daemon that:
//!
//! * **replays traces** ([`replay`]): JSONL arrival traces recorded with
//!   `anycast record`, either in virtual time (bit-identical to the
//!   offline engine, in milliseconds) or paced against a rate-scaled wall
//!   clock (`--speed`);
//! * **serves a wire protocol** ([`server`], [`wire`]): line-delimited
//!   JSON over TCP or a Unix socket — `admit` (with optional correlation
//!   tokens), `teardown`, `resume`, `stats`, `shutdown` — with decisions
//!   routed back per connection, out of order if the signalling is
//!   asynchronous, and structured `error` responses (reason code plus
//!   offending-line echo) for anything unparseable;
//! * **survives hostile clients** ([`overload`], [`journal`]): a bounded,
//!   per-connection-fair admission queue behind a hysteresis shed
//!   controller that answers `overloaded` past its watermarks, a bounded
//!   decision journal for reconnect-safe verdict delivery and
//!   duplicate-submit idempotency, and a hard cap on wire line length;
//! * **runs forever** if asked: rolling-horizon mode (`--window`) lifts
//!   the configured horizon and reports trailing-window admission stats;
//! * **streams telemetry** live (the PR 4 `StreamRecorder` JSONL, with
//!   drop-newest backpressure so a slow disk never stalls admission);
//! * **shuts down gracefully** ([`shutdown`]): SIGINT/SIGTERM or a wire
//!   request drains everything in flight, rejects queued-but-unserved
//!   admits with explicit `shutting_down` lines, releases every pending
//!   two-phase hold (audited to zero leak), and flushes the stream.
//!
//! The crate is a thin deployment shell: every admission decision is made
//! by [`anycast_dac::online::OnlineEngine`], which shares its event
//! handler with the offline experiment down to the RNG fork order.

pub mod journal;
pub mod overload;
pub mod replay;
pub mod server;
pub mod shutdown;
pub mod trace;
pub mod wire;

pub use journal::{DecisionJournal, JournalEntry};
pub use overload::{AdmissionQueue, OverloadOptions, PushRefusal, ShedConfig, ShedController};
pub use replay::{replay_trace, ReplayOutcome, ReplayPacing};
pub use server::{BoundServer, DaemonCounters, Endpoint, ServeOptions, ServeReport};
pub use shutdown::{drain_unserved, install_signal_handler, signalled, ShutdownFlag};
pub use trace::{read_trace, write_trace, TraceHeader, TRACE_VERSION};
pub use wire::{parse_request, Request, ServiceStats, WireError, MAX_LINE_BYTES};
