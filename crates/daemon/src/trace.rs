//! The replayable arrival-trace format: JSONL, one header line then one
//! line per arrival.
//!
//! ```text
//! {"kind":"anycast-trace","version":1,"seed":24301,"lambda":20,"sources":4,"groups":1,"horizon_secs":900}
//! {"at":0.0217,"source":2,"group":0,"holding_secs":95.44,"demand_bps":64000}
//! ...
//! ```
//!
//! `anycast record` writes one of these from any experiment config;
//! `anycast replay` and the daemon's replay mode read it back. The header
//! pins the provenance (seed, rate, index bounds, horizon) so a replayer
//! can sanity-check the trace against its config before submitting
//! anything — index bounds are validated on read, and replaying against
//! the *same* config the trace was recorded from reproduces the offline
//! run bit-identically (see `core/tests/online_replay.rs`).
//!
//! Fault plans are **not** part of the trace: faults are drawn by the
//! engine's own RNG streams from the config's fault plan, so a trace stays
//! valid across fault-plan ablations (`--faults` is re-supplied at replay
//! time).

use anycast_dac::experiment::ExperimentConfig;
use anycast_dac::online::OnlineArrival;
use anycast_net::Bandwidth;
use anycast_telemetry::json::{parse, JsonValue};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write as _};
use std::path::Path;

/// Current trace format version.
pub const TRACE_VERSION: u64 = 1;

/// The provenance header of a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// Format version ([`TRACE_VERSION`]).
    pub version: u64,
    /// Seed of the config the trace was recorded from.
    pub seed: u64,
    /// Arrival rate λ of the recorded config, flows/second.
    pub lambda: f64,
    /// Number of source routers (exclusive bound on `source`).
    pub sources: usize,
    /// Number of anycast groups (exclusive bound on `group`).
    pub groups: usize,
    /// Recorded horizon (`warmup + measure`), seconds.
    pub horizon_secs: f64,
}

fn field<'a>(obj: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    match obj {
        JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn num_field(obj: &JsonValue, key: &str) -> Result<f64, String> {
    match field(obj, key) {
        Some(JsonValue::Num(x)) => Ok(*x),
        Some(_) => Err(format!("field `{key}` is not a number")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn index_field(obj: &JsonValue, key: &str) -> Result<usize, String> {
    let x = num_field(obj, key)?;
    if x.fract() != 0.0 || x < 0.0 {
        return Err(format!(
            "field `{key}` must be a nonnegative integer, got {x}"
        ));
    }
    Ok(x as usize)
}

impl TraceHeader {
    /// Builds the header describing `config`'s arrival process.
    pub fn for_config(config: &ExperimentConfig) -> Self {
        TraceHeader {
            version: TRACE_VERSION,
            seed: config.seed,
            lambda: config.lambda,
            sources: config.sources.len(),
            groups: config.effective_groups().len(),
            horizon_secs: config.warmup_secs + config.measure_secs,
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("kind", JsonValue::Str("anycast-trace".into())),
            ("version", JsonValue::Num(self.version as f64)),
            ("seed", JsonValue::Num(self.seed as f64)),
            ("lambda", JsonValue::Num(self.lambda)),
            ("sources", JsonValue::Num(self.sources as f64)),
            ("groups", JsonValue::Num(self.groups as f64)),
            ("horizon_secs", JsonValue::Num(self.horizon_secs)),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        match field(v, "kind") {
            Some(JsonValue::Str(s)) if s == "anycast-trace" => {}
            _ => return Err("not an anycast-trace header".into()),
        }
        let version = index_field(v, "version")? as u64;
        if version != TRACE_VERSION {
            return Err(format!(
                "unsupported trace version {version} (expected {TRACE_VERSION})"
            ));
        }
        let horizon_secs = num_field(v, "horizon_secs")?;
        if !(horizon_secs.is_finite() && horizon_secs > 0.0) {
            return Err(format!(
                "field `horizon_secs` must be positive and finite, got {horizon_secs}"
            ));
        }
        Ok(TraceHeader {
            version,
            seed: num_field(v, "seed")? as u64,
            lambda: num_field(v, "lambda")?,
            sources: index_field(v, "sources")?,
            groups: index_field(v, "groups")?,
            horizon_secs,
        })
    }
}

fn arrival_json(a: &OnlineArrival) -> JsonValue {
    JsonValue::obj([
        ("at", JsonValue::Num(a.at_secs)),
        ("source", JsonValue::Num(a.source_index as f64)),
        ("group", JsonValue::Num(a.group_index as f64)),
        ("holding_secs", JsonValue::Num(a.holding_secs)),
        ("demand_bps", JsonValue::Num(a.demand.bps() as f64)),
    ])
}

fn arrival_from_json(v: &JsonValue) -> Result<OnlineArrival, String> {
    let holding_secs = num_field(v, "holding_secs")?;
    if !(holding_secs.is_finite() && holding_secs > 0.0) {
        return Err(format!(
            "field `holding_secs` must be positive and finite, got {holding_secs}"
        ));
    }
    let demand_bps = num_field(v, "demand_bps")?;
    if !(demand_bps.is_finite() && demand_bps >= 1.0) {
        return Err(format!(
            "field `demand_bps` must be at least 1, got {demand_bps}"
        ));
    }
    Ok(OnlineArrival {
        at_secs: num_field(v, "at")?,
        source_index: index_field(v, "source")?,
        group_index: index_field(v, "group")?,
        holding_secs,
        demand: Bandwidth::from_bps(demand_bps as u64),
    })
}

/// Writes a trace file: the header for `config`, then one line per
/// arrival. Returns the number of arrival lines written.
///
/// # Errors
///
/// Any I/O error creating or writing the file.
pub fn write_trace(
    path: &Path,
    config: &ExperimentConfig,
    arrivals: &[OnlineArrival],
) -> io::Result<u64> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(
        TraceHeader::for_config(config)
            .to_json()
            .render()
            .as_bytes(),
    )?;
    out.write_all(b"\n")?;
    for a in arrivals {
        out.write_all(arrival_json(a).render().as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()?;
    Ok(arrivals.len() as u64)
}

/// Reads a trace file back: header plus arrivals, validated line by line
/// (syntax, field presence, positive holding time and demand, index
/// bounds against the header, nondecreasing timestamps within the
/// recorded horizon).
///
/// # Errors
///
/// I/O errors, or `InvalidData` naming the offending line for malformed
/// content.
pub fn read_trace(path: &Path) -> io::Result<(TraceHeader, Vec<OnlineArrival>)> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let bad = |line_no: usize, msg: String| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}:{}: {}", path.display(), line_no, msg),
        )
    };
    let header_line = lines
        .next()
        .ok_or_else(|| bad(1, "empty trace file".into()))??;
    let header = parse(&header_line)
        .and_then(|v| TraceHeader::from_json(&v))
        .map_err(|e| bad(1, e))?;
    let mut arrivals = Vec::new();
    let mut last_at = 0.0f64;
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let a = parse(&line)
            .and_then(|v| arrival_from_json(&v))
            .map_err(|e| bad(line_no, e))?;
        if a.source_index >= header.sources {
            return Err(bad(
                line_no,
                format!(
                    "source {} out of range (<{})",
                    a.source_index, header.sources
                ),
            ));
        }
        if a.group_index >= header.groups {
            return Err(bad(
                line_no,
                format!("group {} out of range (<{})", a.group_index, header.groups),
            ));
        }
        if !(a.at_secs.is_finite() && a.at_secs >= last_at) {
            return Err(bad(
                line_no,
                format!(
                    "timestamp {} not nondecreasing (last {})",
                    a.at_secs, last_at
                ),
            ));
        }
        if a.at_secs > header.horizon_secs {
            return Err(bad(
                line_no,
                format!(
                    "arrival at {} is past the recorded horizon {}",
                    a.at_secs, header.horizon_secs
                ),
            ));
        }
        last_at = a.at_secs;
        arrivals.push(a);
    }
    Ok((header, arrivals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
    use anycast_dac::online::record_arrivals;
    use anycast_dac::policy::PolicySpec;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("anycast-daemon-{}-{name}", std::process::id()));
        p
    }

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig::paper_defaults(10.0, SystemSpec::dac(PolicySpec::Ed, 2))
            .with_warmup_secs(30.0)
            .with_measure_secs(60.0)
            .with_seed(5)
    }

    #[test]
    fn trace_round_trips_exactly() -> Result<(), Box<dyn std::error::Error>> {
        let config = quick_config();
        let arrivals = record_arrivals(&config);
        let path = temp_path("roundtrip.jsonl");
        let written = write_trace(&path, &config, &arrivals)?;
        assert_eq!(written, arrivals.len() as u64);
        let (header, read_back) = read_trace(&path)?;
        assert_eq!(header, TraceHeader::for_config(&config));
        assert_eq!(read_back, arrivals);
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn malformed_traces_are_rejected_with_line_numbers() -> Result<(), Box<dyn std::error::Error>> {
        let path = temp_path("malformed.jsonl");
        let config = quick_config();
        let header = TraceHeader::for_config(&config).to_json().render();
        // Each case: (arrival lines after the header, line number and
        // message fragment the error must carry).
        let cases: [(&str, &str, &str); 6] = [
            (
                "{\"at\":1,\"source\":99,\"group\":0,\"holding_secs\":1,\"demand_bps\":64000}",
                ":2:",
                "out of range",
            ),
            (
                "{\"at\":5,\"source\":0,\"group\":0,\"holding_secs\":1,\"demand_bps\":64000}\n\
                 {\"at\":4,\"source\":0,\"group\":0,\"holding_secs\":1,\"demand_bps\":64000}",
                ":3:",
                "nondecreasing",
            ),
            (
                "{\"at\":1,\"source\":0,\"group\":0,\"holding_secs\":0,\"demand_bps\":64000}",
                ":2:",
                "holding_secs",
            ),
            (
                "{\"at\":1,\"source\":0,\"group\":0,\"holding_secs\":1e999,\"demand_bps\":64000}",
                ":2:",
                "holding_secs",
            ),
            (
                "{\"at\":1,\"source\":0,\"group\":0,\"holding_secs\":1,\"demand_bps\":0}",
                ":2:",
                "demand_bps",
            ),
            (
                "{\"at\":91,\"source\":0,\"group\":0,\"holding_secs\":1,\"demand_bps\":64000}",
                ":2:",
                "past the recorded horizon",
            ),
        ];
        for (lines, line_no, needle) in cases {
            std::fs::write(&path, format!("{header}\n{lines}\n"))?;
            let err = read_trace(&path).unwrap_err().to_string();
            assert!(
                err.contains(line_no) && err.contains(needle),
                "`{lines}` must fail with `{needle}` at `{line_no}`, got: {err}"
            );
        }
        // Not a trace at all, and a header with a nonsense horizon.
        std::fs::write(&path, "{\"kind\":\"other\"}\n")?;
        assert!(read_trace(&path).is_err());
        std::fs::write(
            &path,
            header.replace("\"horizon_secs\":90", "\"horizon_secs\":0") + "\n",
        )?;
        let err = read_trace(&path).unwrap_err().to_string();
        assert!(err.contains("horizon_secs"), "{err}");
        std::fs::remove_file(&path).ok();
        Ok(())
    }
}
