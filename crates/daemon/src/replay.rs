//! Trace replay through the online engine: virtual time (as fast as the
//! CPU allows) or paced against a rate-scaled wall clock.
//!
//! Either pacing produces **bit-identical results**: the engine is always
//! advanced to each arrival's own timestamp, so the event-processing
//! order never depends on how long the driver waited in between. Pacing
//! only controls when, in wall-clock terms, each quantum is played —
//! `--speed 60` replays an hour of trace in a real minute, `--speed 1`
//! in real time.

use crate::trace::{read_trace, TraceHeader};
use anycast_dac::experiment::{Decision, ExperimentConfig, Metrics};
use anycast_dac::online::OnlineEngine;
use anycast_net::Topology;
use anycast_sim::{SimTime, TimeSource, WallClock};
use anycast_telemetry::Recorder;
use std::io;
use std::path::Path;

/// How replay maps simulated time onto wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayPacing {
    /// No waiting at all: the whole trace plays as fast as possible.
    Virtual,
    /// Wait between arrivals so that `speed` simulated seconds elapse per
    /// real second.
    Paced {
        /// Simulated seconds per real second (1.0 = real time).
        speed: f64,
    },
}

/// Everything a replay produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The trace file's provenance header.
    pub header: TraceHeader,
    /// Arrival lines submitted.
    pub arrivals: u64,
    /// End-of-run metrics — bit-identical to the offline engine's for the
    /// config the trace was recorded from.
    pub metrics: Metrics,
    /// Every finalised decision, in decision order.
    pub decisions: Vec<Decision>,
}

/// Replays the trace at `path` through an online engine built for
/// `config`, returning the outcome and the recorder.
///
/// # Errors
///
/// I/O or format errors reading the trace, or `InvalidData` when the
/// trace's source/group bounds do not match `config` or its arrivals run
/// past the config's horizon. Malformed traces never reach
/// [`OnlineEngine::submit`]'s invariants: every line is validated before
/// the first submission, so client input cannot panic the engine.
pub fn replay_trace<R: Recorder>(
    topo: &Topology,
    config: &ExperimentConfig,
    path: &Path,
    pacing: ReplayPacing,
    recorder: R,
) -> io::Result<(ReplayOutcome, R)> {
    let (header, arrivals) = read_trace(path)?;
    let mut engine = OnlineEngine::new(topo, config, recorder);
    if header.sources != engine.source_count() || header.groups != engine.group_count() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "trace was recorded for {} sources / {} groups but the config has {} / {}",
                header.sources,
                header.groups,
                engine.source_count(),
                engine.group_count()
            ),
        ));
    }
    // The trace's own horizon was checked on read; the replaying config
    // may legitimately differ (e.g. a longer --measure), so arrivals must
    // also fit *this* engine's horizon before anything is submitted.
    if let Some(last) = arrivals.last() {
        let horizon = engine.horizon();
        if SimTime::from_secs(last.at_secs) > horizon {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "trace arrival at {}s is past the config horizon {:?}",
                    last.at_secs, horizon
                ),
            ));
        }
    }
    let mut clock = match pacing {
        ReplayPacing::Virtual => None,
        ReplayPacing::Paced { speed } => Some(WallClock::new(speed)),
    };
    let mut decisions = Vec::new();
    for a in &arrivals {
        if let Some(clock) = clock.as_mut() {
            clock.sleep_until(SimTime::from_secs(a.at_secs));
        }
        engine.submit(*a);
        // Advance to the arrival's own timestamp (not the wall clock's,
        // which may have overshot): the processing order is then exactly
        // the virtual-time order, whatever the pacing.
        decisions.extend(engine.advance_to(SimTime::from_secs(a.at_secs)));
    }
    let (metrics, tail, recorder) = engine.finish();
    decisions.extend(tail);
    Ok((
        ReplayOutcome {
            header,
            arrivals: arrivals.len() as u64,
            metrics,
            decisions,
        },
        recorder,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::write_trace;
    use anycast_dac::experiment::{run_experiment, SystemSpec};
    use anycast_dac::online::record_arrivals;
    use anycast_dac::policy::PolicySpec;
    use anycast_net::topologies;
    use anycast_telemetry::NullRecorder;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("anycast-replay-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn virtual_and_paced_replays_are_bit_identical() -> io::Result<()> {
        let topo = topologies::mci();
        let config = ExperimentConfig::paper_defaults(8.0, SystemSpec::dac(PolicySpec::Ed, 2))
            .with_warmup_secs(20.0)
            .with_measure_secs(40.0)
            .with_seed(3)
            .with_batching(true);
        let path = temp_path("paced.jsonl");
        write_trace(&path, &config, &record_arrivals(&config))?;

        let (virt, _) = replay_trace(&topo, &config, &path, ReplayPacing::Virtual, NullRecorder)?;
        // High speed so the 60 simulated seconds pace out in ~6 ms.
        let (paced, _) = replay_trace(
            &topo,
            &config,
            &path,
            ReplayPacing::Paced { speed: 10_000.0 },
            NullRecorder,
        )?;
        assert_eq!(virt, paced, "pacing must not change any outcome");
        // And both equal the offline engine.
        assert_eq!(virt.metrics, run_experiment(&topo, &config));
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn mismatched_config_is_rejected() -> io::Result<()> {
        let topo = topologies::mci();
        let config = ExperimentConfig::paper_defaults(8.0, SystemSpec::dac(PolicySpec::Ed, 2))
            .with_warmup_secs(20.0)
            .with_measure_secs(40.0)
            .with_seed(3);
        let path = temp_path("mismatch.jsonl");
        write_trace(&path, &config, &record_arrivals(&config))?;
        // Fewer sources than the trace was recorded for.
        let narrowed = config
            .clone()
            .with_sources(vec![config.sources[0], config.sources[1]]);
        let err =
            replay_trace(&topo, &narrowed, &path, ReplayPacing::Virtual, NullRecorder).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn arrivals_past_the_config_horizon_are_an_error_not_a_panic() -> io::Result<()> {
        let topo = topologies::mci();
        let config = ExperimentConfig::paper_defaults(8.0, SystemSpec::dac(PolicySpec::Ed, 2))
            .with_warmup_secs(20.0)
            .with_measure_secs(40.0)
            .with_seed(3);
        let path = temp_path("horizon.jsonl");
        write_trace(&path, &config, &record_arrivals(&config))?;
        // Replay against a config with a shorter horizon than the trace:
        // the header check alone cannot catch this (source/group bounds
        // still match), so the pre-submit horizon check must.
        let shortened = config.clone().with_measure_secs(10.0);
        let err = replay_trace(
            &topo,
            &shortened,
            &path,
            ReplayPacing::Virtual,
            NullRecorder,
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("past the config horizon"), "{err}");
        std::fs::remove_file(&path).ok();
        Ok(())
    }
}
