//! The decision journal: reconnect-safe verdict delivery.
//!
//! A TCP reset between submit and decision would otherwise lose the
//! verdict forever — the engine has spent the capacity, the client knows
//! nothing. Clients that send a correlation `token` with their admit get
//! journaled: the daemon records the request's lifecycle under the token
//! (queued → dispatched → decided) and a reconnecting client retrieves
//! the rendered decision line with a `resume` op, or rebinds a pending
//! one to its new connection so the decision is delivered there.
//!
//! The journal is **bounded**: beyond `limit` tokens the oldest
//! evictable entry goes (still-queued entries are spared while anything
//! else can go — see [`DecisionJournal::enqueue`]), so a hostile client
//! minting fresh tokens forever cannot grow daemon memory. Eviction is
//! counted, never silent; a resume for an evicted token answers
//! `unknown` and the client must treat the request as undecided.

use std::collections::{HashMap, VecDeque};

/// Where a journaled request stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEntry {
    /// Still in the admission queue; `conn` is where the decision should
    /// go (rebindable by a duplicate submit or resume from a new
    /// connection).
    Queued {
        /// Connection to deliver the decision to.
        conn: u64,
    },
    /// Dispatched to the engine as request `request`; the server's
    /// pending map owns the connection binding now.
    Dispatched {
        /// The engine's dense request id.
        request: u64,
    },
    /// Decided: the rendered `decision` response line, replayed verbatim
    /// to duplicates and resumes.
    Decided {
        /// The rendered wire line (no trailing newline).
        line: String,
    },
}

/// A bounded token → [`JournalEntry`] map with FIFO eviction.
#[derive(Debug)]
pub struct DecisionJournal {
    limit: usize,
    entries: HashMap<String, JournalEntry>,
    /// Insertion order; each live token appears exactly once.
    order: VecDeque<String>,
    evicted: u64,
}

impl DecisionJournal {
    /// An empty journal holding at most `limit` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn new(limit: usize) -> Self {
        assert!(limit > 0, "journal limit must be positive");
        DecisionJournal {
            limit,
            entries: HashMap::new(),
            order: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Tokens currently journaled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted to stay within the bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Looks a token up.
    pub fn get(&self, token: &str) -> Option<&JournalEntry> {
        self.entries.get(token)
    }

    /// Journals a fresh token as queued for `conn`, evicting the oldest
    /// *evictable* entry if the bound is hit. The caller has already
    /// checked the token is not present (a duplicate submit never
    /// reaches here).
    ///
    /// Still-`Queued` entries are spared when anything else can go: the
    /// request they describe sits in the bounded admission queue, so
    /// their count cannot exceed the queue bound, and evicting one would
    /// silently unbind a resumed client from a decision that is still
    /// coming. Only when *every* journaled token is still queued (the
    /// journal was sized below the queue) does the bound win and the
    /// oldest entry go regardless.
    pub fn enqueue(&mut self, token: &str, conn: u64) {
        debug_assert!(!self.entries.contains_key(token));
        while self.entries.len() >= self.limit {
            let mut evicted_one = false;
            for _ in 0..self.order.len() {
                let Some(oldest) = self.order.pop_front() else {
                    break;
                };
                if matches!(self.entries.get(&oldest), Some(JournalEntry::Queued { .. })) {
                    self.order.push_back(oldest);
                } else {
                    self.entries.remove(&oldest);
                    self.evicted += 1;
                    evicted_one = true;
                    break;
                }
            }
            if !evicted_one {
                if let Some(oldest) = self.order.pop_front() {
                    self.entries.remove(&oldest);
                    self.evicted += 1;
                }
            }
        }
        self.entries
            .insert(token.to_string(), JournalEntry::Queued { conn });
        self.order.push_back(token.to_string());
    }

    /// Rebinds a still-queued token to a new connection (duplicate submit
    /// or resume after reconnect). Returns `false` if the token is not in
    /// the queued state.
    pub fn rebind_queued(&mut self, token: &str, conn: u64) -> bool {
        match self.entries.get_mut(token) {
            Some(JournalEntry::Queued { conn: c }) => {
                *c = conn;
                true
            }
            _ => false,
        }
    }

    /// Marks a queued token as dispatched to the engine, returning the
    /// connection it was last bound to. `None` if the token was evicted
    /// meanwhile.
    pub fn dispatch(&mut self, token: &str, request: u64) -> Option<u64> {
        match self.entries.get_mut(token) {
            Some(entry @ JournalEntry::Queued { .. }) => {
                let JournalEntry::Queued { conn } = *entry else {
                    unreachable!()
                };
                *entry = JournalEntry::Dispatched { request };
                Some(conn)
            }
            _ => None,
        }
    }

    /// Records the decided line for a token (no-op if evicted meanwhile).
    pub fn decide(&mut self, token: &str, line: String) {
        if let Some(entry) = self.entries.get_mut(token) {
            *entry = JournalEntry::Decided { line };
        }
    }

    /// Drops a token outright (shutdown rejection of a queued admit: the
    /// request was never decided, so a later resume must say `unknown`,
    /// not `pending`).
    pub fn forget(&mut self, token: &str) {
        if self.entries.remove(token).is_some() {
            self.order.retain(|t| t != token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_queued_dispatched_decided() {
        let mut j = DecisionJournal::new(8);
        j.enqueue("t1", 3);
        assert_eq!(j.get("t1"), Some(&JournalEntry::Queued { conn: 3 }));
        assert!(j.rebind_queued("t1", 9));
        assert_eq!(j.dispatch("t1", 42), Some(9));
        assert!(!j.rebind_queued("t1", 1), "dispatched tokens do not rebind");
        j.decide("t1", "{\"op\":\"decision\"}".into());
        assert_eq!(
            j.get("t1"),
            Some(&JournalEntry::Decided {
                line: "{\"op\":\"decision\"}".into()
            })
        );
    }

    #[test]
    fn eviction_is_fifo_bounded_and_counted() {
        let mut j = DecisionJournal::new(2);
        j.enqueue("a", 0);
        j.enqueue("b", 0);
        j.decide("a", "da".into());
        j.enqueue("c", 0);
        // `a` (oldest) went, even though decided; bound holds.
        assert_eq!(j.len(), 2);
        assert_eq!(j.evicted(), 1);
        assert!(j.get("a").is_none());
        assert!(j.get("b").is_some() && j.get("c").is_some());
        // Deciding an evicted token is a no-op.
        j.decide("a", "again".into());
        assert!(j.get("a").is_none());
    }

    #[test]
    fn eviction_spares_queued_entries_when_possible() {
        let mut j = DecisionJournal::new(2);
        j.enqueue("q", 0); // stays Queued: its request is still in the
                           // bounded admission queue
        j.enqueue("d", 0);
        j.decide("d", "dd".into());
        j.enqueue("n", 0);
        // The decided entry went first even though the queued one is
        // older: evicting `q` would strand a resumed client.
        assert_eq!(j.evicted(), 1);
        assert!(j.get("d").is_none());
        assert_eq!(j.get("q"), Some(&JournalEntry::Queued { conn: 0 }));
        assert!(j.get("n").is_some());
        // But the bound always wins: with only queued entries left, the
        // oldest goes regardless.
        j.enqueue("m", 0);
        assert_eq!(j.len(), 2);
        assert_eq!(j.evicted(), 2);
    }

    #[test]
    fn forget_removes_cleanly() {
        let mut j = DecisionJournal::new(2);
        j.enqueue("a", 0);
        j.forget("a");
        assert!(j.is_empty());
        // The order queue is clean too: filling to the bound twice over
        // never over-evicts.
        j.enqueue("b", 0);
        j.enqueue("c", 0);
        j.enqueue("d", 0);
        assert_eq!(j.len(), 2);
        assert_eq!(j.evicted(), 1);
    }
}
