//! Cooperative shutdown signalling: a shared flag set by SIGINT/SIGTERM
//! or by a `shutdown` wire request, polled by the service loop between
//! ticks — plus the admission-queue drain that keeps shutdown honest
//! toward queued clients ([`drain_unserved`]).
//!
//! The workspace vendors no `libc`/`signal-hook`, so the signal handler
//! is registered through the C `signal(2)` ABI directly — the only
//! `unsafe` in the workspace, confined to this module. The handler does
//! the one thing that is async-signal-safe: a relaxed atomic store.

use crate::overload::{AdmissionQueue, QueuedAdmit};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A clonable shutdown flag.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, unset flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests shutdown (idempotent).
    pub fn request(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The process-wide flag the C signal handler stores into. Process-global
/// by necessity: a signal handler takes no closure context.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::Relaxed);
}

/// Installs `on_signal` for SIGINT and SIGTERM and returns the
/// process-global view of it as a [`ShutdownFlag`]-compatible check.
/// Returns `false` if registration failed (the daemon then still shuts
/// down via the wire `shutdown` op).
pub fn install_signal_handler() -> bool {
    // signal(2): registering a plain function pointer. SIG_ERR is -1.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    let sig_err = usize::MAX;
    // SAFETY: `on_signal` only performs a relaxed atomic store, which is
    // async-signal-safe; `signal` itself is safe to call from the main
    // thread before the service loop starts.
    unsafe { signal(SIGINT, on_signal) != sig_err && signal(SIGTERM, on_signal) != sig_err }
}

/// Whether a registered signal handler has fired.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::Relaxed)
}

/// Empties the admission queue at shutdown, in the queue's own fair
/// dispatch order, so the server can send every queued-but-unserved admit
/// an explicit `shutting_down` rejection instead of leaving its client
/// waiting on a decision that will never come. The engine is stopping:
/// nothing drained here may be submitted.
pub fn drain_unserved(queue: &mut AdmissionQueue) -> Vec<QueuedAdmit> {
    std::iter::from_fn(|| queue.pop()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        let f = ShutdownFlag::new();
        assert!(!f.is_requested());
        let g = f.clone();
        g.request();
        assert!(f.is_requested());
    }

    #[test]
    fn handler_installs() {
        assert!(install_signal_handler());
        assert!(!signalled());
    }

    #[test]
    fn drain_empties_the_queue_in_dispatch_order() {
        let admit = |conn: u64| QueuedAdmit {
            conn,
            token: None,
            source_index: 0,
            group_index: 0,
            demand: anycast_net::Bandwidth::from_bps(1),
            holding_secs: 1.0,
            received: std::time::Instant::now(),
        };
        let mut q = AdmissionQueue::new(8, 4);
        q.push(admit(0)).unwrap();
        q.push(admit(0)).unwrap();
        q.push(admit(1)).unwrap();
        let drained = drain_unserved(&mut q);
        assert_eq!(
            drained.iter().map(|a| a.conn).collect::<Vec<_>>(),
            vec![0, 1, 0]
        );
        assert!(q.is_empty());
    }
}
