//! The service loop: a long-lived DAC controller behind a TCP or Unix
//! socket, speaking the line-delimited JSON protocol of [`crate::wire`].
//!
//! One engine thread owns the [`OnlineEngine`] and all connection
//! writers; per-connection reader threads parse request lines and feed
//! them through a channel. Simulated time is anchored to a rate-scaled
//! [`WallClock`]: every tick (and every message) the engine is advanced
//! to the clock's current instant, draining whatever arrived since the
//! last quantum through the batched admission path, then finalised
//! decisions are routed back to the connections that asked for them —
//! possibly out of arrival order under asynchronous two-phase
//! signalling, which is what the `request` ids are for.
//!
//! Graceful shutdown (SIGINT/SIGTERM, a `shutdown` request, or the
//! horizon): stop accepting, decide everything already due, release every
//! pending two-phase hold ([`Metrics::leaked_hold_bps`] audits this to
//! zero), flush the telemetry stream, and return the final [`Metrics`].

use crate::shutdown::{signalled, ShutdownFlag};
use crate::wire::{
    decision_response, error_response, parse_request, shutdown_response, stats_response, Request,
};
use anycast_dac::experiment::{ExperimentConfig, Metrics};
use anycast_dac::online::{OnlineArrival, OnlineEngine};
use anycast_net::Topology;
use anycast_sim::{TimeSource, WallClock};
use anycast_telemetry::{
    Event, NullRecorder, Recorder, StreamPolicy, StreamRecorder, DEFAULT_STREAM_CAPACITY,
};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:4730` (port 0 picks one).
    Tcp(String),
    /// A Unix-domain socket path (unlinked on bind and on exit).
    Unix(PathBuf),
}

/// Service knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Simulated seconds per real second (1.0 = real time).
    pub speed: f64,
    /// Engine tick: how long the loop waits for traffic before advancing
    /// the clock anyway (drives departures, timers, telemetry sampling).
    pub tick: Duration,
    /// Live telemetry: stream every event as JSONL to this path.
    pub telemetry: Option<PathBuf>,
    /// Full-channel policy for the telemetry stream. The default for a
    /// live service is [`StreamPolicy::DropNewest`]: a slow disk must not
    /// stall admission decisions; drops are counted, never silent.
    pub telemetry_policy: StreamPolicy,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            speed: 1.0,
            tick: Duration::from_millis(5),
            telemetry: None,
            telemetry_policy: StreamPolicy::DropNewest,
        }
    }
}

/// What a completed service run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// End-of-run metrics, closed at the instant the service stopped
    /// (holds drained, ledger audited).
    pub metrics: Metrics,
    /// Requests submitted over the wire.
    pub submitted: u64,
    /// Decisions finalised and routed (some may have found their
    /// connection already gone).
    pub decided: u64,
    /// Telemetry lines written to the stream file (0 when telemetry off).
    pub telemetry_written: u64,
    /// Telemetry events dropped under backpressure (the
    /// `telemetry_dropped` metric; 0 when telemetry off).
    pub telemetry_dropped: u64,
}

/// Either telemetry sink, behind one concrete type so the engine is not
/// generic over it at the service layer.
enum ServiceRecorder {
    Null(NullRecorder),
    Stream(StreamRecorder),
}

impl Recorder for ServiceRecorder {
    fn enabled(&self) -> bool {
        match self {
            ServiceRecorder::Null(r) => r.enabled(),
            ServiceRecorder::Stream(r) => r.enabled(),
        }
    }

    fn record(&mut self, time_secs: f64, event: Event) {
        match self {
            ServiceRecorder::Null(r) => r.record(time_secs, event),
            ServiceRecorder::Stream(r) => r.record(time_secs, event),
        }
    }

    fn link_sample_interval(&self) -> Option<f64> {
        match self {
            ServiceRecorder::Null(r) => r.link_sample_interval(),
            ServiceRecorder::Stream(r) => r.link_sample_interval(),
        }
    }
}

impl ServiceRecorder {
    fn dropped(&self) -> u64 {
        match self {
            ServiceRecorder::Null(_) => 0,
            ServiceRecorder::Stream(r) => r.dropped(),
        }
    }

    fn finish(self) -> io::Result<(u64, u64)> {
        match self {
            ServiceRecorder::Null(_) => Ok((0, 0)),
            ServiceRecorder::Stream(r) => {
                let dropped = r.dropped();
                Ok((r.finish()?, dropped))
            }
        }
    }
}

enum ListenerKind {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

enum StreamKind {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl StreamKind {
    fn split(self) -> io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        match self {
            StreamKind::Tcp(s) => {
                let w = s.try_clone()?;
                Ok((Box::new(BufReader::new(s)), Box::new(w)))
            }
            StreamKind::Unix(s) => {
                let w = s.try_clone()?;
                Ok((Box::new(BufReader::new(s)), Box::new(w)))
            }
        }
    }
}

/// Messages from reader/accept threads into the engine thread.
enum Inbound {
    Connected(u64, Box<dyn Write + Send>),
    Request(u64, Request),
    Malformed(u64, String),
    Disconnected(u64),
}

/// A daemon bound to its endpoint but not yet serving — split so tests
/// (and the CLI) can learn an ephemeral port before the loop starts.
pub struct BoundServer {
    listener: ListenerKind,
}

impl BoundServer {
    /// Binds the endpoint. A Unix path is unlinked first if present.
    ///
    /// # Errors
    ///
    /// Any bind error.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Self> {
        let listener = match endpoint {
            Endpoint::Tcp(addr) => ListenerKind::Tcp(TcpListener::bind(addr)?),
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                ListenerKind::Unix(UnixListener::bind(path)?, path.clone())
            }
        };
        Ok(BoundServer { listener })
    }

    /// The bound TCP address (None for Unix endpoints).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            ListenerKind::Tcp(l) => l.local_addr().ok(),
            ListenerKind::Unix(..) => None,
        }
    }

    /// Runs the service loop until shutdown (signal, wire request, or the
    /// config horizon) and returns the final report.
    ///
    /// # Errors
    ///
    /// Listener/telemetry I/O errors. Per-connection errors only drop
    /// that connection.
    pub fn run(
        self,
        topo: &Topology,
        config: &ExperimentConfig,
        options: &ServeOptions,
        shutdown: ShutdownFlag,
    ) -> io::Result<ServeReport> {
        let recorder = match &options.telemetry {
            None => ServiceRecorder::Null(NullRecorder),
            Some(path) => ServiceRecorder::Stream(
                StreamRecorder::create(path, config.seed, DEFAULT_STREAM_CAPACITY)?
                    .with_policy(options.telemetry_policy),
            ),
        };
        let mut engine = OnlineEngine::new(topo, config, recorder);
        let horizon = engine.horizon();
        let mut clock = WallClock::new(options.speed);

        let (tx, rx) = channel::<Inbound>();
        let accept_handle = spawn_acceptor(self.listener, tx, shutdown.clone());

        let mut writers: HashMap<u64, Box<dyn Write + Send>> = HashMap::new();
        // request id -> (connection, submission instant); ids are the
        // engine's dense arrival counter, assigned in submission order.
        let mut pending: HashMap<u64, (u64, Instant)> = HashMap::new();
        let mut submitted: u64 = 0;
        let mut decided: u64 = 0;

        loop {
            let inbound = rx.recv_timeout(options.tick);
            let now = clock.now();
            match inbound {
                Ok(Inbound::Connected(conn, writer)) => {
                    writers.insert(conn, writer);
                }
                Ok(Inbound::Disconnected(conn)) => {
                    writers.remove(&conn);
                }
                Ok(Inbound::Malformed(conn, message)) => {
                    respond(&mut writers, conn, &error_response(&message));
                }
                Ok(Inbound::Request(conn, request)) => match request {
                    Request::Admit {
                        source_index,
                        group_index,
                        demand,
                        holding_secs,
                    } => {
                        // Stamp the arrival at the wall clock, clamped
                        // monotonically onto the engine's timeline.
                        let at = now.max(engine.now()).min(horizon);
                        if source_index >= engine.source_count()
                            || group_index >= engine.group_count()
                        {
                            respond(
                                &mut writers,
                                conn,
                                &error_response(&format!(
                                    "source/group out of range (< {} / < {})",
                                    engine.source_count(),
                                    engine.group_count()
                                )),
                            );
                        } else if clock.now() > horizon {
                            respond(
                                &mut writers,
                                conn,
                                &error_response("daemon horizon reached; request not admitted"),
                            );
                        } else {
                            engine.submit(OnlineArrival {
                                at_secs: at.as_secs(),
                                source_index,
                                group_index,
                                holding_secs,
                                demand,
                            });
                            pending.insert(submitted, (conn, Instant::now()));
                            submitted += 1;
                        }
                    }
                    Request::Stats => {
                        let line = stats_response(&engine.snapshot(), engine.recorder().dropped());
                        respond(&mut writers, conn, &line);
                    }
                    Request::Shutdown => {
                        respond(&mut writers, conn, &shutdown_response());
                        shutdown.request();
                    }
                },
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }

            for d in engine.advance_to(now) {
                decided += 1;
                if let Some((conn, since)) = pending.remove(&d.request) {
                    let latency_us = since.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    respond(&mut writers, conn, &decision_response(&d, latency_us));
                }
            }

            if shutdown.is_requested() || signalled() || engine.now() >= horizon {
                break;
            }
        }
        shutdown.request(); // stops the acceptor whatever ended the loop

        // Graceful drain: decide everything already due, then close the
        // run where it stands — finish_now() releases every pending
        // two-phase hold and audits the ledger.
        for d in engine.advance_to(clock.now()) {
            decided += 1;
            if let Some((conn, since)) = pending.remove(&d.request) {
                let latency_us = since.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                respond(&mut writers, conn, &decision_response(&d, latency_us));
            }
        }
        let (metrics, tail, recorder) = engine.finish_now();
        for d in tail {
            decided += 1;
            if let Some((conn, since)) = pending.remove(&d.request) {
                let latency_us = since.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                respond(&mut writers, conn, &decision_response(&d, latency_us));
            }
        }
        drop(writers);
        let (telemetry_written, telemetry_dropped) = recorder.finish()?;
        let _ = accept_handle.join();

        Ok(ServeReport {
            metrics,
            submitted,
            decided,
            telemetry_written,
            telemetry_dropped,
        })
    }
}

fn respond(writers: &mut HashMap<u64, Box<dyn Write + Send>>, conn: u64, line: &str) {
    let gone = match writers.get_mut(&conn) {
        Some(w) => w
            .write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush())
            .is_err(),
        None => false,
    };
    if gone {
        writers.remove(&conn);
    }
}

/// Accepts connections until shutdown, spawning one reader thread per
/// connection. Non-blocking accept polled at 20 Hz so the flag is
/// honoured promptly.
fn spawn_acceptor(
    listener: ListenerKind,
    tx: Sender<Inbound>,
    shutdown: ShutdownFlag,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let unix_path = match &listener {
            ListenerKind::Unix(l, path) => {
                let _ = l.set_nonblocking(true);
                Some(path.clone())
            }
            ListenerKind::Tcp(l) => {
                let _ = l.set_nonblocking(true);
                None
            }
        };
        let mut next_conn: u64 = 0;
        while !shutdown.is_requested() && !signalled() {
            let accepted = match &listener {
                ListenerKind::Tcp(l) => match l.accept() {
                    Ok((s, _)) => Some(StreamKind::Tcp(s)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
                ListenerKind::Unix(l, _) => match l.accept() {
                    Ok((s, _)) => Some(StreamKind::Unix(s)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
            };
            match accepted {
                None => std::thread::sleep(Duration::from_millis(50)),
                Some(stream) => {
                    let conn = next_conn;
                    next_conn += 1;
                    let Ok((reader, writer)) = stream.split() else {
                        continue;
                    };
                    if tx.send(Inbound::Connected(conn, writer)).is_err() {
                        break;
                    }
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for line in reader.lines() {
                            let Ok(line) = line else { break };
                            if line.trim().is_empty() {
                                continue;
                            }
                            let msg = match parse_request(&line) {
                                Ok(req) => Inbound::Request(conn, req),
                                Err(e) => Inbound::Malformed(conn, e),
                            };
                            if tx.send(msg).is_err() {
                                break;
                            }
                        }
                        let _ = tx.send(Inbound::Disconnected(conn));
                    });
                }
            }
        }
        if let Some(path) = unix_path {
            let _ = std::fs::remove_file(path);
        }
    })
}
