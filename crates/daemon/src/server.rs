//! The service loop: a long-lived DAC controller behind a TCP or Unix
//! socket, speaking the line-delimited JSON protocol of [`crate::wire`].
//!
//! One engine thread owns the [`OnlineEngine`] and all connection
//! writers; per-connection reader threads parse request lines (bounded at
//! [`MAX_LINE_BYTES`]) and feed them through a channel. Simulated time is
//! anchored to a rate-scaled [`WallClock`]: every tick the engine is
//! advanced to the clock's current instant, then finalised decisions are
//! routed back to the connections that asked for them — possibly out of
//! arrival order under asynchronous two-phase signalling, which is what
//! the `request` ids and correlation tokens are for.
//!
//! Between the wire and the engine sits the overload machinery of
//! [`crate::overload`]: admits wait in a bounded, per-connection-fair
//! [`AdmissionQueue`]; a hysteresis [`ShedController`] watches queue
//! depth and decision latency and answers `overloaded` when the daemon
//! is past its watermarks. Tokens are journaled in a bounded
//! [`DecisionJournal`] so reconnecting clients can `resume` verdicts
//! they missed, with duplicate-submit idempotency.
//!
//! Graceful shutdown (SIGINT/SIGTERM, a `shutdown` request, or the
//! horizon): stop accepting, decide everything already due, reject every
//! queued-but-unserved admit with an explicit `shutting_down` line,
//! release every pending two-phase hold ([`Metrics::leaked_hold_bps`]
//! audits this to zero), flush the telemetry stream, and return the
//! final [`Metrics`] plus the service [`DaemonCounters`].

use crate::journal::{DecisionJournal, JournalEntry};
use crate::overload::{AdmissionQueue, OverloadOptions, QueuedAdmit, ShedController};
use crate::shutdown::{drain_unserved, signalled, ShutdownFlag};
use crate::wire::{
    decision_response, error_response, overloaded_response, parse_request, read_line_bounded,
    resumed_response, shutdown_rejection, shutdown_response, stats_response, torn_down_response,
    LineRead, Request, ServiceStats, WireError, MAX_LINE_BYTES,
};
use anycast_dac::experiment::{Decision, ExperimentConfig, Metrics};
use anycast_dac::online::{OnlineArrival, OnlineEngine};
use anycast_net::Topology;
use anycast_rsvp::SessionId;
use anycast_sim::{TimeSource, WallClock};
use anycast_telemetry::{
    Event, MetricKey, MetricsRegistry, NullRecorder, Recorder, StreamPolicy, StreamRecorder,
    DEFAULT_STREAM_CAPACITY,
};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:4730` (port 0 picks one).
    Tcp(String),
    /// A Unix-domain socket path (unlinked on bind and on exit).
    Unix(PathBuf),
}

/// Service knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Simulated seconds per real second (1.0 = real time).
    pub speed: f64,
    /// Engine tick: how long the loop waits for traffic before advancing
    /// the clock anyway (drives departures, timers, telemetry sampling).
    pub tick: Duration,
    /// Live telemetry: stream every event as JSONL to this path.
    pub telemetry: Option<PathBuf>,
    /// Full-channel policy for the telemetry stream. The default for a
    /// live service is [`StreamPolicy::DropNewest`]: a slow disk must not
    /// stall admission decisions; drops are counted, never silent.
    pub telemetry_policy: StreamPolicy,
    /// Rolling-window service mode: `Some(window_secs)` makes the run
    /// horizon effectively unbounded (the daemon serves until told to
    /// stop) and `stats` reports trailing-window admission counters over
    /// the last `window_secs` of simulated time. `None` keeps the
    /// configured finite horizon.
    pub window_secs: Option<f64>,
    /// Overload protection: queue bounds, shed watermarks, journal bound.
    pub overload: OverloadOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            speed: 1.0,
            tick: Duration::from_millis(5),
            telemetry: None,
            telemetry_policy: StreamPolicy::DropNewest,
            window_secs: None,
            overload: OverloadOptions::default(),
        }
    }
}

/// Service-layer counters: what happened between the wire and the
/// engine. The accounting invariant, checked by the soak test, is
///
/// ```text
/// admits_received == submitted + shed + duplicates + rejected_shutdown
/// ```
///
/// — every validated admit is dispatched to the engine, refused with an
/// `overloaded` line, answered from the journal, or rejected at
/// shutdown. Nothing is dropped silently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonCounters {
    /// Well-formed admits that passed validation (including duplicates).
    pub admits_received: u64,
    /// Admits refused with an `overloaded` response (shed controller or
    /// hard queue bound).
    pub shed: u64,
    /// Duplicate-token submits answered from the journal.
    pub duplicates: u64,
    /// Queued admits rejected with `shutting_down` at drain.
    pub rejected_shutdown: u64,
    /// `resume` ops served.
    pub resumed: u64,
    /// Wire `teardown` ops that reclaimed a live session.
    pub torn_down: u64,
    /// Wire `teardown` ops for dead or unknown sessions (harmless).
    pub teardown_misses: u64,
    /// `error` responses sent (parse, unknown op, overlong line,
    /// out-of-range, horizon).
    pub wire_errors: u64,
    /// Journal entries evicted to stay within the bound.
    pub journal_evicted: u64,
    /// High-water mark of the admission queue.
    pub queue_peak: u64,
    /// High-water mark of the journal.
    pub journal_peak: u64,
    /// Times the shed controller engaged (excursions, not requests).
    pub shed_engaged: u64,
}

impl DaemonCounters {
    /// Exports the counters as a [`MetricsRegistry`] (counters for the
    /// monotone totals, high-water-mark gauges for the peaks) so daemon
    /// runs merge and render like any other telemetry source.
    pub fn to_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for (name, value) in [
            ("daemon_admits_received", self.admits_received),
            ("daemon_shed_total", self.shed),
            ("daemon_duplicates_total", self.duplicates),
            ("daemon_rejected_shutdown_total", self.rejected_shutdown),
            ("daemon_resumed_total", self.resumed),
            ("daemon_torn_down_total", self.torn_down),
            ("daemon_teardown_misses_total", self.teardown_misses),
            ("daemon_wire_errors_total", self.wire_errors),
            ("daemon_journal_evicted_total", self.journal_evicted),
            ("daemon_shed_engaged_total", self.shed_engaged),
        ] {
            reg.inc(MetricKey::plain(name), value as f64);
        }
        reg.set_gauge_max(
            MetricKey::plain("daemon_queue_peak"),
            self.queue_peak as f64,
        );
        reg.set_gauge_max(
            MetricKey::plain("daemon_journal_peak"),
            self.journal_peak as f64,
        );
        reg
    }
}

/// What a completed service run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// End-of-run metrics, closed at the instant the service stopped
    /// (holds drained, ledger audited).
    pub metrics: Metrics,
    /// Requests dispatched into the engine.
    pub submitted: u64,
    /// Decisions finalised and routed (some may have found their
    /// connection already gone).
    pub decided: u64,
    /// Telemetry lines written to the stream file (0 when telemetry off).
    pub telemetry_written: u64,
    /// Telemetry events dropped under backpressure (the
    /// `telemetry_dropped` metric; 0 when telemetry off).
    pub telemetry_dropped: u64,
    /// Service-layer accounting (shed, duplicates, errors, peaks).
    pub counters: DaemonCounters,
}

/// Either telemetry sink, behind one concrete type so the engine is not
/// generic over it at the service layer.
enum ServiceRecorder {
    Null(NullRecorder),
    Stream(StreamRecorder),
}

impl Recorder for ServiceRecorder {
    fn enabled(&self) -> bool {
        match self {
            ServiceRecorder::Null(r) => r.enabled(),
            ServiceRecorder::Stream(r) => r.enabled(),
        }
    }

    fn record(&mut self, time_secs: f64, event: Event) {
        match self {
            ServiceRecorder::Null(r) => r.record(time_secs, event),
            ServiceRecorder::Stream(r) => r.record(time_secs, event),
        }
    }

    fn link_sample_interval(&self) -> Option<f64> {
        match self {
            ServiceRecorder::Null(r) => r.link_sample_interval(),
            ServiceRecorder::Stream(r) => r.link_sample_interval(),
        }
    }
}

impl ServiceRecorder {
    fn dropped(&self) -> u64 {
        match self {
            ServiceRecorder::Null(_) => 0,
            ServiceRecorder::Stream(r) => r.dropped(),
        }
    }

    fn finish(self) -> io::Result<(u64, u64)> {
        match self {
            ServiceRecorder::Null(_) => Ok((0, 0)),
            ServiceRecorder::Stream(r) => {
                let dropped = r.dropped();
                Ok((r.finish()?, dropped))
            }
        }
    }
}

enum ListenerKind {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

enum StreamKind {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl StreamKind {
    fn split(self) -> io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        match self {
            StreamKind::Tcp(s) => {
                let w = s.try_clone()?;
                Ok((Box::new(BufReader::new(s)), Box::new(ClosingWriter::Tcp(w))))
            }
            StreamKind::Unix(s) => {
                let w = s.try_clone()?;
                Ok((
                    Box::new(BufReader::new(s)),
                    Box::new(ClosingWriter::Unix(w)),
                ))
            }
        }
    }
}

/// Write half of a split connection. The reader half is a `try_clone`,
/// so merely dropping this handle would leave the socket open (and a
/// peer draining responses would block forever waiting for EOF).
/// Dropping the write half therefore shuts the whole socket down: the
/// peer sees EOF, and so does our own reader thread, which then exits.
enum ClosingWriter {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Write for ClosingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClosingWriter::Tcp(s) => s.write(buf),
            ClosingWriter::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClosingWriter::Tcp(s) => s.flush(),
            ClosingWriter::Unix(s) => s.flush(),
        }
    }
}

impl Drop for ClosingWriter {
    fn drop(&mut self) {
        let _ = match self {
            ClosingWriter::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            ClosingWriter::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

/// Messages from reader/accept threads into the engine thread.
enum Inbound {
    Connected(u64, Box<dyn Write + Send>),
    Request(u64, Request),
    /// A line that never became a request: the structured error plus the
    /// offending line (truncated by the reader) to echo back.
    Malformed(u64, WireError, String),
    Disconnected(u64),
}

/// Everything the engine thread owns besides the engine itself. Split
/// from the engine so methods can borrow both without fighting.
struct ServiceState {
    writers: HashMap<u64, Box<dyn Write + Send>>,
    /// request id -> delivery binding; ids are the engine's dense
    /// arrival counter, assigned in dispatch order.
    pending: HashMap<u64, PendingDecision>,
    queue: AdmissionQueue,
    shed: ShedController,
    shed_enabled: bool,
    journal: DecisionJournal,
    counters: DaemonCounters,
    admit_spin: Duration,
    submitted: u64,
    decided: u64,
}

struct PendingDecision {
    conn: u64,
    token: Option<String>,
    since: Instant,
}

impl ServiceState {
    fn respond(&mut self, conn: u64, line: &str) {
        let gone = match self.writers.get_mut(&conn) {
            Some(w) => w
                .write_all(line.as_bytes())
                .and_then(|()| w.write_all(b"\n"))
                .and_then(|()| w.flush())
                .is_err(),
            None => false,
        };
        if gone {
            self.writers.remove(&conn);
        }
    }

    fn send_error(&mut self, conn: u64, err: &WireError, line: &str) {
        self.counters.wire_errors += 1;
        let rendered = error_response(err, line);
        self.respond(conn, &rendered);
    }

    /// One admit line, already parsed and range-validated: journal
    /// idempotency, shed control, then the bounded queue.
    #[allow(clippy::too_many_arguments)]
    fn handle_admit(
        &mut self,
        conn: u64,
        source_index: usize,
        group_index: usize,
        demand: anycast_net::Bandwidth,
        holding_secs: f64,
        token: Option<String>,
    ) {
        self.counters.admits_received += 1;

        // Duplicate-submit idempotency: a token the journal knows is
        // answered from the journal, never re-decided — even while
        // shedding, so a retrying client cannot double-spend capacity.
        if let Some(t) = token.as_deref() {
            match self.journal.get(t) {
                Some(JournalEntry::Decided { line }) => {
                    let line = line.clone();
                    self.counters.duplicates += 1;
                    self.respond(conn, &line);
                    return;
                }
                Some(JournalEntry::Queued { .. }) => {
                    self.journal.rebind_queued(t, conn);
                    self.counters.duplicates += 1;
                    let line = resumed_response(t, "pending");
                    self.respond(conn, &line);
                    return;
                }
                Some(JournalEntry::Dispatched { request }) => {
                    let request = *request;
                    if let Some(p) = self.pending.get_mut(&request) {
                        p.conn = conn;
                    }
                    self.counters.duplicates += 1;
                    let line = resumed_response(t, "pending");
                    self.respond(conn, &line);
                    return;
                }
                None => {}
            }
        }

        if self.shed_enabled && self.shed.is_shedding() {
            self.counters.shed += 1;
            let line = overloaded_response(token.as_deref(), self.queue.len(), true);
            self.respond(conn, &line);
            return;
        }
        let item = QueuedAdmit {
            conn,
            token: token.clone(),
            source_index,
            group_index,
            demand,
            holding_secs,
            received: Instant::now(),
        };
        match self.queue.push(item) {
            Ok(()) => {
                let depth = self.queue.len() as u64;
                self.counters.queue_peak = self.counters.queue_peak.max(depth);
            }
            Err((item, _refusal)) => {
                self.counters.shed += 1;
                let line = overloaded_response(item.token.as_deref(), self.queue.len(), false);
                self.respond(item.conn, &line);
                return;
            }
        }
        // Journal only after the push succeeded, so a shed admit's token
        // stays unknown (the client must retry it as a fresh request).
        if let Some(t) = token.as_deref() {
            self.journal.enqueue(t, conn);
            self.counters.journal_peak = self.counters.journal_peak.max(self.journal.len() as u64);
            self.counters.journal_evicted = self.journal.evicted();
        }
    }

    /// Fairly dispatches up to `budget` queued admits into the engine.
    fn dispatch(
        &mut self,
        engine: &mut OnlineEngine<ServiceRecorder>,
        clock: &mut WallClock,
        budget: usize,
    ) {
        for _ in 0..budget {
            let Some(item) = self.queue.pop() else { break };
            let horizon = engine.horizon();
            let at = clock.now().max(engine.now()).min(horizon);
            engine.submit(OnlineArrival {
                at_secs: at.as_secs(),
                source_index: item.source_index,
                group_index: item.group_index,
                holding_secs: item.holding_secs,
                demand: item.demand,
            });
            if !self.admit_spin.is_zero() {
                // The benchmark's synthetic decision cost: burn wall
                // clock on the engine thread, as a heavier policy would.
                let until = Instant::now() + self.admit_spin;
                while Instant::now() < until {
                    std::hint::spin_loop();
                }
            }
            // A resume/duplicate may have rebound the token to a newer
            // connection while it sat queued; the journal's binding wins.
            let conn = item
                .token
                .as_deref()
                .and_then(|t| self.journal.dispatch(t, self.submitted))
                .unwrap_or(item.conn);
            self.pending.insert(
                self.submitted,
                PendingDecision {
                    conn,
                    token: item.token,
                    since: item.received,
                },
            );
            self.submitted += 1;
        }
    }

    /// Routes finalised decisions back to their connections, journaling
    /// tokened ones and feeding the latency EWMA.
    fn route(&mut self, decisions: Vec<Decision>) {
        for d in decisions {
            self.decided += 1;
            if let Some(p) = self.pending.remove(&d.request) {
                let latency_us = p.since.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                self.shed.observe_latency(latency_us);
                let line = decision_response(&d, latency_us, p.token.as_deref());
                if let Some(t) = p.token.as_deref() {
                    self.journal.decide(t, line.clone());
                }
                self.respond(p.conn, &line);
            }
        }
    }

    fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            queue_depth: self.queue.len(),
            queue_limit: self.queue.limit(),
            shed: self.counters.shed,
            shedding: self.shed.is_shedding(),
            journal_size: self.journal.len(),
            duplicates: self.counters.duplicates,
            resumed: self.counters.resumed,
            torn_down: self.counters.torn_down,
            wire_errors: self.counters.wire_errors,
        }
    }
}

/// A daemon bound to its endpoint but not yet serving — split so tests
/// (and the CLI) can learn an ephemeral port before the loop starts.
pub struct BoundServer {
    listener: ListenerKind,
}

impl BoundServer {
    /// Binds the endpoint. A Unix path is unlinked first if present.
    ///
    /// # Errors
    ///
    /// Any bind error.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Self> {
        let listener = match endpoint {
            Endpoint::Tcp(addr) => ListenerKind::Tcp(TcpListener::bind(addr)?),
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                ListenerKind::Unix(UnixListener::bind(path)?, path.clone())
            }
        };
        Ok(BoundServer { listener })
    }

    /// The bound TCP address (None for Unix endpoints).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            ListenerKind::Tcp(l) => l.local_addr().ok(),
            ListenerKind::Unix(..) => None,
        }
    }

    /// Runs the service loop until shutdown (signal, wire request, or —
    /// outside rolling mode — the config horizon) and returns the final
    /// report.
    ///
    /// # Errors
    ///
    /// Listener/telemetry I/O errors. Per-connection errors only drop
    /// that connection.
    pub fn run(
        self,
        topo: &Topology,
        config: &ExperimentConfig,
        options: &ServeOptions,
        shutdown: ShutdownFlag,
    ) -> io::Result<ServeReport> {
        let recorder = match &options.telemetry {
            None => ServiceRecorder::Null(NullRecorder),
            Some(path) => ServiceRecorder::Stream(
                StreamRecorder::create(path, config.seed, DEFAULT_STREAM_CAPACITY)?
                    .with_policy(options.telemetry_policy),
            ),
        };
        let mut engine = OnlineEngine::new(topo, config, recorder);
        if let Some(window_secs) = options.window_secs {
            engine.enable_rolling(window_secs);
        }
        let horizon = engine.horizon();
        let rolling = engine.is_rolling();
        let mut clock = WallClock::new(options.speed);

        let (tx, rx) = channel::<Inbound>();
        let accept_handle = spawn_acceptor(self.listener, tx, shutdown.clone());

        let ov = &options.overload;
        let mut state = ServiceState {
            writers: HashMap::new(),
            pending: HashMap::new(),
            queue: AdmissionQueue::new(ov.queue_limit, ov.per_conn_limit),
            shed: ShedController::new(ov.shed_config),
            shed_enabled: ov.shed,
            journal: DecisionJournal::new(ov.journal_limit),
            counters: DaemonCounters::default(),
            admit_spin: ov.admit_spin,
            submitted: 0,
            decided: 0,
        };

        loop {
            // Wait up to one tick for traffic, then drain whatever else
            // already arrived so a burst is seen whole before dispatch.
            match rx.recv_timeout(options.tick) {
                Ok(msg) => {
                    handle_inbound(&mut state, &mut engine, &mut clock, &shutdown, rolling, msg);
                    while let Ok(msg) = rx.try_recv() {
                        handle_inbound(
                            &mut state,
                            &mut engine,
                            &mut clock,
                            &shutdown,
                            rolling,
                            msg,
                        );
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }

            // The shed controller reads the backlog *before* dispatch:
            // that is the queueing the next admit would join. Post-
            // dispatch the queue is transiently empty every tick and
            // depth-based shedding would never see overload.
            state.shed.update(state.queue.len());
            state.counters.shed_engaged = state.shed.times_engaged();
            state.dispatch(&mut engine, &mut clock, ov.dispatch_per_tick);
            let now = clock.now();
            let decisions = engine.advance_to(now);
            state.route(decisions);

            if shutdown.is_requested() || signalled() || (!rolling && engine.now() >= horizon) {
                break;
            }
        }
        shutdown.request(); // stops the acceptor whatever ended the loop

        // Graceful drain, in three moves. (1) Reject every
        // queued-but-unserved admit explicitly — the engine is stopping
        // and will not decide them.
        for item in drain_unserved(&mut state.queue) {
            state.counters.rejected_shutdown += 1;
            if let Some(t) = item.token.as_deref() {
                state.journal.forget(t);
            }
            let line = shutdown_rejection(item.token.as_deref());
            state.respond(item.conn, &line);
        }
        // (2) Decide everything already dispatched and due.
        let decisions = engine.advance_to(clock.now());
        state.route(decisions);
        // (3) Close the run where it stands — finish_now() releases
        // every pending two-phase hold and audits the ledger.
        let (metrics, tail, recorder) = engine.finish_now();
        state.route(tail);
        state.counters.journal_evicted = state.journal.evicted();
        let ServiceState {
            writers,
            counters,
            submitted,
            decided,
            ..
        } = state;
        drop(writers);
        let (telemetry_written, telemetry_dropped) = recorder.finish()?;
        let _ = accept_handle.join();

        Ok(ServeReport {
            metrics,
            submitted,
            decided,
            telemetry_written,
            telemetry_dropped,
            counters,
        })
    }
}

/// One channel message against the service state. Free function (not a
/// method) so the engine and clock borrow independently of `state`.
fn handle_inbound(
    state: &mut ServiceState,
    engine: &mut OnlineEngine<ServiceRecorder>,
    clock: &mut WallClock,
    shutdown: &ShutdownFlag,
    rolling: bool,
    msg: Inbound,
) {
    match msg {
        Inbound::Connected(conn, writer) => {
            state.writers.insert(conn, writer);
        }
        Inbound::Disconnected(conn) => {
            state.writers.remove(&conn);
        }
        Inbound::Malformed(conn, err, line) => {
            state.send_error(conn, &err, &line);
        }
        Inbound::Request(conn, request) => match request {
            Request::Admit {
                source_index,
                group_index,
                demand,
                holding_secs,
                token,
            } => {
                if source_index >= engine.source_count() || group_index >= engine.group_count() {
                    let err = WireError {
                        reason: "out_of_range",
                        message: format!(
                            "source/group out of range (< {} / < {})",
                            engine.source_count(),
                            engine.group_count()
                        ),
                    };
                    state.send_error(conn, &err, "");
                } else if !rolling && clock.now() > engine.horizon() {
                    let err = WireError {
                        reason: "horizon_reached",
                        message: "daemon horizon reached; request not admitted".into(),
                    };
                    state.send_error(conn, &err, "");
                } else if shutdown.is_requested() {
                    state.counters.admits_received += 1;
                    state.counters.rejected_shutdown += 1;
                    let line = shutdown_rejection(token.as_deref());
                    state.respond(conn, &line);
                } else {
                    state.handle_admit(
                        conn,
                        source_index,
                        group_index,
                        demand,
                        holding_secs,
                        token,
                    );
                }
            }
            Request::Teardown { session } => {
                let reclaimed = engine.teardown(SessionId::from_raw(session));
                if reclaimed {
                    state.counters.torn_down += 1;
                } else {
                    state.counters.teardown_misses += 1;
                }
                let line = torn_down_response(session, reclaimed);
                state.respond(conn, &line);
            }
            Request::Resume { token } => {
                state.counters.resumed += 1;
                let line = match state.journal.get(&token) {
                    Some(JournalEntry::Decided { line }) => line.clone(),
                    Some(JournalEntry::Queued { .. }) => {
                        state.journal.rebind_queued(&token, conn);
                        resumed_response(&token, "pending")
                    }
                    Some(JournalEntry::Dispatched { request }) => {
                        let request = *request;
                        if let Some(p) = state.pending.get_mut(&request) {
                            p.conn = conn;
                        }
                        resumed_response(&token, "pending")
                    }
                    None => resumed_response(&token, "unknown"),
                };
                state.respond(conn, &line);
            }
            Request::Stats => {
                // Answer after everything the client sent before this
                // line has reached the engine: flush the current backlog
                // and process its arrival events so freshly submitted
                // setups are visible in the snapshot as in-flight.
                let backlog = state.queue.len();
                state.dispatch(engine, clock, backlog);
                let tail = engine.pump();
                state.route(tail);
                let snapshot = engine.snapshot();
                let stats = state.service_stats();
                let line = stats_response(&snapshot, engine.recorder().dropped(), &stats);
                state.respond(conn, &line);
            }
            Request::Shutdown => {
                let line = shutdown_response();
                state.respond(conn, &line);
                shutdown.request();
            }
        },
    }
}

/// Accepts connections until shutdown, spawning one reader thread per
/// connection. Non-blocking accept polled at 20 Hz so the flag is
/// honoured promptly.
fn spawn_acceptor(
    listener: ListenerKind,
    tx: Sender<Inbound>,
    shutdown: ShutdownFlag,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let unix_path = match &listener {
            ListenerKind::Unix(l, path) => {
                let _ = l.set_nonblocking(true);
                Some(path.clone())
            }
            ListenerKind::Tcp(l) => {
                let _ = l.set_nonblocking(true);
                None
            }
        };
        let mut next_conn: u64 = 0;
        while !shutdown.is_requested() && !signalled() {
            let accepted = match &listener {
                ListenerKind::Tcp(l) => match l.accept() {
                    Ok((s, _)) => Some(StreamKind::Tcp(s)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
                ListenerKind::Unix(l, _) => match l.accept() {
                    Ok((s, _)) => Some(StreamKind::Unix(s)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
            };
            match accepted {
                None => std::thread::sleep(Duration::from_millis(50)),
                Some(stream) => {
                    let conn = next_conn;
                    next_conn += 1;
                    let Ok((mut reader, writer)) = stream.split() else {
                        continue;
                    };
                    if tx.send(Inbound::Connected(conn, writer)).is_err() {
                        break;
                    }
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        loop {
                            let msg = match read_line_bounded(&mut *reader, MAX_LINE_BYTES) {
                                Err(_) | Ok(LineRead::Eof) => break,
                                Ok(LineRead::Overlong { echo, len }) => Inbound::Malformed(
                                    conn,
                                    WireError {
                                        reason: "line_too_long",
                                        message: format!(
                                            "line of {len} bytes exceeds the \
                                             {MAX_LINE_BYTES}-byte limit"
                                        ),
                                    },
                                    echo,
                                ),
                                Ok(LineRead::Line(line)) => {
                                    if line.trim().is_empty() {
                                        continue;
                                    }
                                    match parse_request(&line) {
                                        Ok(req) => Inbound::Request(conn, req),
                                        Err(e) => Inbound::Malformed(conn, e, line),
                                    }
                                }
                            };
                            if tx.send(msg).is_err() {
                                break;
                            }
                        }
                        let _ = tx.send(Inbound::Disconnected(conn));
                    });
                }
            }
        }
        if let Some(path) = unix_path {
            let _ = std::fs::remove_file(path);
        }
    })
}
