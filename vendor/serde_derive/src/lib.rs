//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types so
//! they stay serialization-ready, but nothing in-tree performs actual
//! serialization (there is no serde_json and no wire format). With no
//! crates.io access, the derives expand to nothing: the marker traits in
//! the vendored `serde` have blanket implementations, so `T: Serialize`
//! bounds still hold for every derived type.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`. Accepts (and ignores) `#[serde(...)]`
/// attributes so annotated types keep compiling.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`. Accepts (and ignores) `#[serde(...)]`
/// attributes so annotated types keep compiling.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
