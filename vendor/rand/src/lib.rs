//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small `rand 0.8` API surface it uses: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range}`. The
//! generator is xoshiro256++ (the same family the real `SmallRng` uses on
//! 64-bit targets) seeded through SplitMix64, exactly as `rand 0.8` seeds
//! from a `u64`. Streams are deterministic and high-quality, but are NOT
//! bit-compatible with the real crate — every consumer in this workspace
//! only requires self-consistent determinism, not crates.io-compatible
//! streams.

#![forbid(unsafe_code)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator's native uniform distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, as in `rand 0.8`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, span)`, debiased via rejection sampling on the
/// top zone. `span == 0` encodes the full 64-bit width.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let raw = rng.next_u64();
        if raw < zone {
            return raw % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                // Span of u64::MAX + 1 wraps to the 0 sentinel: full width.
                let span = (end as u128 - start as u128).wrapping_add(1) as u64;
                start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface, blanket-implemented for every
/// [`RngCore`] as in the real crate.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full-width uniform for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding, restricted to the `seed_from_u64` entry point
/// the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion
    /// (the same construction `rand 0.8` uses for `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator family behind the real
    /// `SmallRng` on 64-bit platforms. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_stay_in_range_and_fill_it() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
            min = min.min(u);
            max = max.max(u);
            sum += u;
        }
        assert!(min < 0.01, "min {min}");
        assert!(max > 0.99, "max {max}");
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_is_uniform_enough() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "bucket {i}: {c}");
        }
        for _ in 0..100 {
            let v = rng.gen_range(5u64..=5);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = SmallRng::seed_from_u64(11);
        let v = rng.gen_range(0u64..=u64::MAX);
        let _ = v;
        let w = rng.gen_range(0.0f64..2.5);
        assert!((0.0..2.5).contains(&w));
    }
}
