//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a miniature property-testing harness covering the API its test suites
//! use: `proptest! { #[test] fn name(x in strategy) { .. } }`, range and
//! tuple strategies, `any::<T>()`, `prop::collection::vec`, `prop_map`,
//! and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports the case number and panics;
//!   cases are regenerated deterministically from the test's name, so a
//!   failure always reproduces by re-running the test.
//! * **Fixed deterministic seeding.** There is no persistence file and no
//!   wall-clock entropy: the per-test RNG is seeded from an FNV-1a hash
//!   of `module_path!::test_name`, making every run identical — which the
//!   workspace's determinism-sensitive suites prefer anyway.
//! * **Case count** defaults to 64 and can be raised or lowered with the
//!   `PROPTEST_CASES` environment variable, mirroring the real crate.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a single generated test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion; the test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`; another case is drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (assumption-violating) case.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Convenience alias matching the real crate.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The harness's deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary byte string via FNV-1a.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw below `span` (`span > 0`), rejection-debiased.
    pub fn below(&mut self, span: u64) -> u64 {
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return raw % span;
            }
        }
    }
}

/// Number of cases each property runs (`PROPTEST_CASES` overrides).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Cap on consecutive `prop_assume!` rejections before the test aborts.
pub const MAX_REJECTS: u32 = 65_536;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; draws are retried until `pred` holds.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected every draw", self.whence);
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128).wrapping_add(1) as u64;
                if span == 0 {
                    // Full-width u64 range.
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                // Occasionally emit the exact endpoints so boundary
                // behaviour is exercised despite the measure-zero odds.
                match rng.below(64) {
                    0 => start,
                    1 => end,
                    _ => start + (rng.unit_f64() as $t) * (end - start),
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4)
);

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias towards small magnitudes: whole-domain uniform
                // integers almost never exercise boundary-adjacent logic.
                match rng.below(8) {
                    0 => 0 as $t,
                    1 => (rng.below(16) as u64) as $t,
                    2 => <$t>::MAX,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats across magnitudes, both signs, with common anchors.
        match rng.below(8) {
            0 => 0.0,
            1 => 1.0,
            2 => -1.0,
            _ => {
                let mag = rng.unit_f64() * 2.0e6 - 1.0e6;
                mag * rng.unit_f64()
            }
        }
    }
}

macro_rules! tuple_arbitrary {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($s::arbitrary(rng),)+)
            }
        }
    )+};
}

tuple_arbitrary!((A), (A, B), (A, B, C), (A, B, C, D));

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Strategies over collections (`prop::collection` in the real crate).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min
                + if span <= 1 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector whose elements come from `element` and whose length comes
    /// from `size` (a `usize` or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace module mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// item becomes a `#[test]` (the attribute is written by the caller, as in
/// the real crate) that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let name = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::TestRng::from_name(name);
            let cases = $crate::case_count();
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case_index: u32 = 0;
            while passed < cases {
                case_index += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < $crate::MAX_REJECTS,
                            "{name}: too many prop_assume! rejections"
                        );
                    }
                    Err($crate::TestCaseError::Fail(reason)) => {
                        panic!(
                            "{name}: property failed at deterministic case \
                             #{case_index}: {reason}"
                        );
                    }
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Rejects the current case (drawing a replacement) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Everything tests normally import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.0f64..2.0, z in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((0.0..=1.0).contains(&z));
        }

        /// Tuples, prop_map and vec compose.
        #[test]
        fn combinators_compose(
            v in prop::collection::vec((1u32..5, any::<bool>()), 0..20),
            w in prop::collection::vec(0.0f64..1.0, 4),
            (a, b) in (1u64..100, 1u64..100).prop_map(|(x, y)| (x + y, x * y)),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert_eq!(w.len(), 4);
            prop_assert!(a >= 2);
            prop_assert!(b >= 1);
            for (n, _flag) in &v {
                prop_assert!((1..5).contains(n));
            }
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "only even survives: {}", x);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = crate::TestRng::from_name("alpha");
        let mut b = crate::TestRng::from_name("alpha");
        let mut c = crate::TestRng::from_name("beta");
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn helper_functions_can_short_circuit() {
        fn helper(v: &[u64]) -> Result<(), TestCaseError> {
            prop_assert!(!v.is_empty(), "helper sees data");
            Ok(())
        }
        assert!(helper(&[1]).is_ok());
        assert!(matches!(helper(&[]), Err(TestCaseError::Fail(_))));
    }
}
