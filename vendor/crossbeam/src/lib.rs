//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::scope` with the crossbeam 0.8 calling convention
//! (the spawn closure receives a `&Scope` argument, and `scope` returns a
//! `Result` carrying any worker panic) implemented on `std::thread::scope`,
//! which did not exist when crossbeam's scoped threads were designed.

#![forbid(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped-thread support. `crossbeam::scope` is re-exported at the crate
/// root, matching the real crate's facade.
pub mod thread {
    /// The error half of [`scope`]'s result: the payload of the first
    /// panicking worker.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// worker (crossbeam lets workers spawn siblings; the workspace only
    /// ever ignores the argument, but the signature is preserved).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker inside the scope. The worker receives the scope
        /// handle, mirroring crossbeam's `Scope::spawn`.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All workers are joined before `scope`
    /// returns; if any worker panicked, the first panic payload is
    /// returned as `Err` instead of propagating.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        super::catch_unwind(super::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            42
        })
        .expect("no worker panics");
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn worker_panic_is_reported_as_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("worker died"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_the_handle() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
