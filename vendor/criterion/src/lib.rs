//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros — as a
//! plain wall-clock timing harness: each benchmark is warmed up briefly,
//! then timed over a fixed number of batches, and the median per-iteration
//! time is printed. No statistics engine, no HTML reports, no CLI parsing
//! (arguments such as `--bench` are accepted and ignored).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; the stub treats every variant
/// the same (one setup per measured batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input: batch size chosen by criterion.
    SmallInput,
    /// Large routine input: fewer iterations per batch.
    LargeInput,
    /// Each batch runs exactly one iteration.
    PerIteration,
}

/// Per-benchmark measurement driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 10,
            sample_count: 15,
        }
    }

    /// Times `routine`, called repeatedly with no per-iteration setup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Brief warmup, also used to size the measurement batches so one
        // sample lasts at least ~1 ms for fast routines.
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        let once = warm_start.elapsed();
        if once < Duration::from_micros(100) {
            self.iters_per_sample = 1000;
        } else if once > Duration::from_millis(50) {
            self.iters_per_sample = 1;
            self.sample_count = 5;
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        self.sample_count = 5;
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn run_one(full_name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    println!("bench {full_name:<50} median {:>12.3?}", b.median());
}

/// A named family of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<N: AsRef<str>, F>(&mut self, id: N, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.as_ref()), f);
        self
    }

    /// Finishes the group (a no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Registers and immediately runs one stand-alone benchmark.
    pub fn bench_function<N: AsRef<str>, F>(&mut self, id: N, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(id.as_ref(), f);
        self
    }
}

/// Declares a benchmark suite: a function that runs each registered
/// benchmark function against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each suite in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut counter = 0u64;
        c.bench_function("count", |b| b.iter(|| counter += 1));
        assert!(counter > 0);
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut total = 0usize;
        group.bench_function(String::from("owned-name"), |b| {
            b.iter_batched(
                || vec![1, 2, 3],
                |v| total += v.len(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(total > 0);
    }
}
