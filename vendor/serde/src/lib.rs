//! Offline stand-in for the `serde` crate.
//!
//! The workspace marks its data types `Serialize`/`Deserialize` to keep
//! them serialization-ready, but performs no in-tree serialization (no
//! serde_json, no wire format anywhere). Since the build environment has
//! no crates.io access, this stub supplies the two trait names with
//! blanket implementations and re-exports the no-op derives, so both the
//! trait bounds and the `#[derive(...)]` attributes on workspace types
//! compile unchanged.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
///
/// Blanket-implemented for every type: the workspace only ever uses it in
/// derives and bounds, never to drive an actual serializer.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
///
/// The lifetime parameter mirrors the real trait so existing bounds like
/// `for<'de> T: Deserialize<'de>` keep compiling.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[test]
    #[cfg(feature = "derive")]
    fn derives_expand_and_traits_hold() {
        #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq)]
        struct Point {
            x: u32,
        }
        fn assert_serialize<T: crate::Serialize>(_: &T) {}
        let p = Point { x: 3 };
        assert_serialize(&p);
        assert_eq!(p, Point { x: 3 });
    }
}
