//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API subset it actually uses, implemented on top of
//! `std::sync`. Semantics match `parking_lot` where they matter here:
//! `lock()` never returns a poison error (a poisoned std mutex is
//! recovered transparently) and `into_inner()` consumes the lock.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion primitive with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never fails: poison is ignored, as in the
    /// real `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API subset.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_is_shareable_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }
}
