//! Property tests for reservation-bandwidth conservation: whatever the
//! mix of explicit teardowns, lost teardowns (orphans) and soft-state
//! expiries, every reserved bit must eventually come back, and at every
//! intermediate step the link ledger must agree with the set of live
//! sessions.

use anycast::prelude::*;
use anycast::rsvp::{RefreshConfig, RefreshTracker};
use proptest::prelude::*;

/// The ledger's total must always equal the per-session sum: bandwidth ×
/// path length over every live session.
fn attributable(rsvp: &ReservationEngine) -> u64 {
    rsvp.sessions()
        .map(|(_, r)| r.bandwidth().bps() * r.path().links().len() as u64)
        .sum()
}

proptest! {
    /// Reserve a random batch of flows, tear some down explicitly, orphan
    /// the rest, and let soft state expire the orphans: the ledger drains
    /// to exactly zero and never disagrees with the session set.
    #[test]
    fn drained_ledger_returns_every_bit(
        seed in any::<u64>(),
        flows in 1usize..40,
        loss_percent in 0u32..=100,
    ) {
        let topo = topologies::mci();
        let group =
            AnycastGroup::new("G", topologies::MCI_GROUP_MEMBERS.map(NodeId::new)).unwrap();
        let routes = RouteTable::shortest_paths(&topo, &group);
        let mut links =
            LinkStateTable::with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2);
        let mut rsvp = ReservationEngine::new();
        let mut tracker = RefreshTracker::new(RefreshConfig::rsvp_default());
        let mut rng = SimRng::seed_from(seed);
        let sources = topologies::mci_source_nodes();

        let mut live = Vec::new();
        let mut orphans = 0usize;
        for i in 0..flows {
            let source = sources[rng.below(sources.len())];
            let member = rng.below(group.len());
            let route = &routes.routes_from(source).unwrap()[member];
            let out = rsvp
                .probe_and_reserve(&mut links, route, Bandwidth::from_kbps(64))
                .expect("light load always fits");
            tracker.register(out.session, i as f64);
            live.push(out.session);
            prop_assert_eq!(links.total_reserved().bps(), attributable(&rsvp));
        }
        let reserved_peak = links.total_reserved();
        prop_assert!(!reserved_peak.is_zero());

        // Each flow departs; its teardown message is lost with the drawn
        // probability, leaving an orphan for soft state.
        for s in live {
            if rng.uniform() * 100.0 < f64::from(loss_percent) {
                orphans += 1; // lost PATH_TEAR: no teardown, no forget
            } else {
                rsvp.teardown(&mut links, s).unwrap();
                tracker.forget(s);
            }
            prop_assert_eq!(links.total_reserved().bps(), attributable(&rsvp));
        }
        prop_assert_eq!(rsvp.active_sessions(), orphans);

        // One sweep past every deadline reclaims all orphans at once.
        let far = flows as f64 + RefreshConfig::rsvp_default().lifetime_secs() + 1.0;
        let expired = tracker.collect_expired(far);
        prop_assert_eq!(expired.len(), orphans);
        for s in expired {
            rsvp.teardown(&mut links, s).unwrap();
        }
        prop_assert_eq!(links.total_reserved(), Bandwidth::ZERO);
        prop_assert_eq!(rsvp.active_sessions(), 0);
    }

    /// The full experiment loop never leaks either, fault-free or under
    /// heavy control-plane loss.
    #[test]
    fn experiment_never_leaks_bandwidth(
        seed in any::<u64>(),
        loss_percent in 0u32..=50,
    ) {
        let topo = topologies::mci();
        let plan = FaultPlan::none().with_teardown_loss(f64::from(loss_percent) / 100.0);
        let cfg = ExperimentConfig::paper_defaults(
            5.0,
            SystemSpec::dac(PolicySpec::Ed, 2),
        )
        .with_warmup_secs(30.0)
        .with_measure_secs(120.0)
        .with_seed(seed)
        .with_faults(plan);
        let m = run_experiment(&topo, &cfg);
        prop_assert_eq!(m.leaked_bandwidth_bps, 0);
        prop_assert!(m.orphans_reclaimed <= m.orphaned_reservations);
    }
}
