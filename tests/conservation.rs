//! Cross-crate conservation and consistency invariants: whatever the
//! admission layer does, the network ledger and the reservation engine
//! must never disagree.

use anycast::prelude::*;
use anycast::sim::workload::PoissonWorkload;

/// Drives a random admit/release schedule through the full stack and
/// checks ledger conservation at every step.
#[test]
fn ledger_never_leaks_under_random_schedule() {
    let topo = topologies::mci();
    let group = AnycastGroup::new("G", topologies::MCI_GROUP_MEMBERS.map(NodeId::new)).unwrap();
    let routes = RouteTable::shortest_paths(&topo, &group);
    let mut links = LinkStateTable::with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2);
    let mut rsvp = ReservationEngine::new();
    let mut rng = SimRng::seed_from(99);
    let demand = Bandwidth::from_kbps(64);
    let sources = topologies::mci_source_nodes();

    let mut controllers: Vec<AdmissionController> = sources
        .iter()
        .map(|&s| {
            AdmissionController::new(
                PolicySpec::wd_dh_default().build().unwrap(),
                RetrialPolicy::FixedLimit(3),
                routes.distances(s).expect("sources are in the topology"),
            )
        })
        .collect();

    let mut live: Vec<(anycast::rsvp::SessionId, usize)> = Vec::new();
    let mut expected_flow_bandwidth = Bandwidth::ZERO;
    for step in 0..5_000 {
        let admit = live.is_empty() || rng.uniform() < 0.6;
        if admit {
            let si = rng.below(sources.len());
            let out = controllers[si].admit(
                routes.routes_from(sources[si]).unwrap(),
                &mut links,
                &mut rsvp,
                demand,
                &mut rng,
            );
            if let Some(flow) = out.admitted {
                let hops = routes.routes_from(sources[si]).unwrap()[flow.member_index].hops();
                expected_flow_bandwidth += demand * hops as u64;
                live.push((flow.session, hops));
            }
        } else {
            let idx = rng.below(live.len());
            let (session, hops) = live.swap_remove(idx);
            rsvp.teardown(&mut links, session).unwrap();
            expected_flow_bandwidth -= demand * hops as u64;
        }
        assert_eq!(
            links.total_reserved(),
            expected_flow_bandwidth,
            "step {step}: ledger total must equal the sum of live reservations"
        );
        assert_eq!(rsvp.active_sessions(), live.len());
    }
    // Drain everything: the ledger must return to pristine.
    for (session, _) in live {
        rsvp.teardown(&mut links, session).unwrap();
    }
    assert_eq!(links.total_reserved(), Bandwidth::ZERO);
    for (_, snap) in links.iter() {
        assert_eq!(snap.flows, 0);
        assert_eq!(snap.reserved, Bandwidth::ZERO);
    }
}

/// No link ever reports more reserved bandwidth than its capacity during
/// a full closed-loop experiment, and the run is reproducible.
#[test]
fn experiment_determinism_across_systems() {
    let topo = topologies::mci();
    for system in [
        SystemSpec::dac(PolicySpec::Ed, 2),
        SystemSpec::dac(PolicySpec::wd_dh_default(), 3),
        SystemSpec::dac(PolicySpec::WdDb, 2),
        SystemSpec::ShortestPath,
        SystemSpec::GlobalDynamic,
    ] {
        let cfg = ExperimentConfig::paper_defaults(30.0, system)
            .with_warmup_secs(100.0)
            .with_measure_secs(200.0)
            .with_seed(31337);
        let a = run_experiment(&topo, &cfg);
        let b = run_experiment(&topo, &cfg);
        assert_eq!(a, b, "{}: runs with one seed must be identical", a.label);
        assert!(a.offered > 0);
        assert!(a.admission_probability >= 0.0 && a.admission_probability <= 1.0);
    }
}

/// The workload generator, the engine and the stats agree on how many
/// requests a run offers: λ · duration within sampling error.
#[test]
fn offered_load_matches_lambda() {
    let topo = topologies::mci();
    let lambda = 20.0;
    let measure = 2_000.0;
    let cfg = ExperimentConfig::paper_defaults(lambda, SystemSpec::GlobalDynamic)
        .with_warmup_secs(100.0)
        .with_measure_secs(measure)
        .with_seed(8);
    let m = run_experiment(&topo, &cfg);
    let expected = lambda * measure;
    let sd = expected.sqrt();
    assert!(
        (m.offered as f64 - expected).abs() < 5.0 * sd,
        "offered {} vs expected {expected} ± {sd}",
        m.offered
    );
}

/// Workload determinism feeds experiment determinism: same master seed,
/// same request stream.
#[test]
fn workload_streams_are_stable() {
    let mut rng_a = SimRng::seed_from(1234);
    let mut rng_b = SimRng::seed_from(1234);
    let mut wa = PoissonWorkload::new(15.0, 180.0, 9, &mut rng_a);
    let mut wb = PoissonWorkload::new(15.0, 180.0, 9, &mut rng_b);
    for _ in 0..1_000 {
        assert_eq!(wa.next_request(), wb.next_request());
    }
}

/// Unicast degenerates correctly: a group of one behaves like plain
/// unicast admission control (the paper's §1 observation that unicast is
/// the K = 1 special case of anycast).
#[test]
fn unicast_special_case() {
    let topo = topologies::mci();
    let cfg = ExperimentConfig::paper_defaults(25.0, SystemSpec::dac(PolicySpec::Ed, 5))
        .with_group(vec![NodeId::new(8)])
        .with_warmup_secs(200.0)
        .with_measure_secs(400.0)
        .with_seed(77);
    let m = run_experiment(&topo, &cfg);
    // K = 1: retrials are impossible regardless of R.
    assert!((m.mean_tries - 1.0).abs() < 1e-9);
    // And ED = SP = WD/* when there is only one member.
    let sp = run_experiment(&topo, &cfg.clone().with_system(SystemSpec::ShortestPath));
    assert!(
        (m.admission_probability - sp.admission_probability).abs() < 1e-9,
        "ED with K=1 ({}) must equal SP ({})",
        m.admission_probability,
        sp.admission_probability
    );
}
