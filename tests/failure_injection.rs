//! Fault-injection integration tests — beyond the paper's fault-free
//! assumption (§3): the admission layer must degrade gracefully when
//! links die, and recover when they return.

use anycast::prelude::*;
use anycast::rsvp::RefreshConfig;
use anycast::rsvp::RefreshTracker;

fn setup() -> (
    Topology,
    AnycastGroup,
    RouteTable,
    LinkStateTable,
    ReservationEngine,
    SimRng,
) {
    let topo = topologies::mci();
    let group = AnycastGroup::new("G", topologies::MCI_GROUP_MEMBERS.map(NodeId::new)).unwrap();
    let routes = RouteTable::shortest_paths(&topo, &group);
    let links = LinkStateTable::with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2);
    (
        topo,
        group,
        routes,
        links,
        ReservationEngine::new(),
        SimRng::seed_from(4242),
    )
}

fn admit_release_batch(
    controller: &mut AdmissionController,
    routes: &[Path],
    links: &mut LinkStateTable,
    rsvp: &mut ReservationEngine,
    rng: &mut SimRng,
    n: usize,
) -> (f64, Vec<usize>) {
    let mut admitted = 0;
    let mut member_counts = vec![0usize; 5];
    for _ in 0..n {
        let out = controller.admit(routes, links, rsvp, Bandwidth::from_kbps(64), rng);
        if let Some(flow) = out.admitted {
            admitted += 1;
            member_counts[flow.member_index] += 1;
            rsvp.teardown(links, flow.session).unwrap();
        }
    }
    (admitted as f64 / n as f64, member_counts)
}

/// Failing one member's access route only dents availability briefly for
/// the history-driven policy, and traffic shifts to survivors; restoring
/// the link brings the member back into rotation.
#[test]
fn wddh_steers_around_failed_link_and_recovers() {
    let (_topo, _group, routes, mut links, mut rsvp, _) = setup();
    // The exile phase below asserts one *realization* of a stochastic
    // process: with h failures accumulated, the restored member escapes
    // exile with probability ≈ 400·α^h per batch, which is small but not
    // negligible. The seed pins a stream (under the vendored RNG) where
    // the escape does not happen; see the α^h discussion below.
    let mut rng = SimRng::seed_from(177);
    let source = NodeId::new(5);
    let mut controller = AdmissionController::new(
        PolicySpec::wd_dh_default().build().unwrap(),
        RetrialPolicy::FixedLimit(2),
        routes.distances(source).expect("source is in the topology"),
    );
    let source_routes = routes.routes_from(source).unwrap();

    let (ap0, dist0) = admit_release_batch(
        &mut controller,
        source_routes,
        &mut links,
        &mut rsvp,
        &mut rng,
        400,
    );
    assert_eq!(ap0, 1.0);
    assert!(dist0.iter().all(|&c| c > 0), "all members used: {dist0:?}");

    // Kill the last hop toward the nearest member.
    let victim_member = routes.nearest_member(source).unwrap();
    let victim_link = *source_routes[victim_member].links().last().unwrap();
    links.fail_link(victim_link).unwrap();

    let (ap1, dist1) = admit_release_batch(
        &mut controller,
        source_routes,
        &mut links,
        &mut rsvp,
        &mut rng,
        400,
    );
    assert_eq!(
        dist1[victim_member], 0,
        "no flow can complete toward the failed member"
    );
    assert!(
        ap1 > 0.95,
        "history + one retry must absorb a single member failure, got {ap1}"
    );

    // Restore the link. This documents a *real limitation* of the paper's
    // WD/D+H as specified: h_i only resets on a successful reservation,
    // and a member with a large h_i is almost never selected, so it can
    // never earn that success — a long outage exiles the member
    // permanently (α^h underflows). The paper never hits this because its
    // experiments are fault-free and h_i stays small.
    links.restore_link(victim_link).unwrap();
    let h_after_outage = controller.history().failures(victim_member);
    assert!(
        h_after_outage >= 5,
        "outage must have accumulated consecutive failures, got {h_after_outage}"
    );
    let (ap2, dist2) = admit_release_batch(
        &mut controller,
        source_routes,
        &mut links,
        &mut rsvp,
        &mut rng,
        400,
    );
    assert_eq!(ap2, 1.0, "other members still carry everything");
    assert_eq!(
        dist2[victim_member], 0,
        "exile: α^h ≈ 0 keeps the restored member out of rotation"
    );

    // The operator remedy: flush the admission history.
    controller.reset_history();
    let (ap3, dist3) = admit_release_batch(
        &mut controller,
        source_routes,
        &mut links,
        &mut rsvp,
        &mut rng,
        400,
    );
    assert_eq!(ap3, 1.0);
    assert!(
        dist3[victim_member] > 0,
        "after a history reset the restored member attracts traffic again: {dist3:?}"
    );
}

/// The history-cap extension cures the exile: after the outage ends, the
/// capped WD/D+H naturally re-discovers the restored member — no operator
/// intervention needed.
#[test]
fn history_cap_recovers_without_reset() {
    use anycast::dac::policy::{HistoryMode, WdDh};

    let (_topo, _group, routes, mut links, mut rsvp, mut rng) = setup();
    let source = NodeId::new(5);
    // Cap at 4: the dead member's weight floor is α⁴ = 1/16 of its base,
    // so ~2–6% selection probability survives the outage.
    let policy = WdDh::with_history_cap(0.5, HistoryMode::FromBase, 4).unwrap();
    let mut controller = AdmissionController::new(
        Box::new(policy),
        RetrialPolicy::FixedLimit(2),
        routes.distances(source).expect("source is in the topology"),
    );
    let source_routes = routes.routes_from(source).unwrap();
    let victim_member = routes.nearest_member(source).unwrap();
    let victim_link = *source_routes[victim_member].links().last().unwrap();

    // Outage long enough to exile the uncapped policy.
    links.fail_link(victim_link).unwrap();
    let (ap_down, dist_down) = admit_release_batch(
        &mut controller,
        source_routes,
        &mut links,
        &mut rsvp,
        &mut rng,
        400,
    );
    assert_eq!(dist_down[victim_member], 0);
    assert!(ap_down > 0.95, "survivors carry the load: {ap_down}");

    // Restore — and the member returns to rotation on its own.
    links.restore_link(victim_link).unwrap();
    let (ap_up, dist_up) = admit_release_batch(
        &mut controller,
        source_routes,
        &mut links,
        &mut rsvp,
        &mut rng,
        400,
    );
    assert_eq!(ap_up, 1.0);
    assert!(
        dist_up[victim_member] > 0,
        "capped history must rediscover the member: {dist_up:?}"
    );
    assert_eq!(
        controller.history().failures(victim_member),
        0,
        "the first success after restoration resets h_i"
    );
}

/// GDI sees through fixed routes entirely: a failed link on the shortest
/// path does not cost the oracle a single admission while alternative
/// paths exist.
#[test]
fn gdi_is_immune_to_single_link_failure() {
    let (topo, group, routes, mut links, mut rsvp, _) = setup();
    let source = NodeId::new(17);
    let victim = *routes.routes_from(source).unwrap()[routes.nearest_member(source).unwrap()]
        .links()
        .first()
        .unwrap();
    links.fail_link(victim).unwrap();
    let mut gdi = GlobalDynamicSystem::new();
    for _ in 0..200 {
        let out = gdi.admit(
            &topo,
            &group,
            source,
            &mut links,
            &mut rsvp,
            Bandwidth::from_kbps(64),
        );
        let flow = out.admitted.expect("oracle routes around one dead link");
        rsvp.teardown(&mut links, flow.session).unwrap();
    }
}

/// Soft state cleans up after a crashed source: reservations that stop
/// being refreshed expire and return their bandwidth.
#[test]
fn soft_state_reclaims_orphaned_reservations() {
    let (_topo, _group, routes, mut links, mut rsvp, _) = setup();
    let route = routes.route(NodeId::new(3), NodeId::new(8)).unwrap();
    let mut tracker = RefreshTracker::new(RefreshConfig::rsvp_default());

    // Three flows; their source crashes at t = 100 (stops refreshing).
    let mut sessions = Vec::new();
    for i in 0..3 {
        let out = rsvp
            .probe_and_reserve(&mut links, route, Bandwidth::from_kbps(64))
            .unwrap();
        tracker.register(out.session, i as f64 * 10.0);
        sessions.push(out.session);
    }
    let reserved_before = links.total_reserved();
    assert!(!reserved_before.is_zero());

    // Refresh until the crash...
    for t in [30.0, 60.0, 90.0] {
        for &s in &sessions {
            tracker.refresh(s, t).unwrap();
        }
    }
    // ... then silence. Sweep at crash + lifetime: everything expires.
    let expired =
        tracker.collect_expired(90.0 + RefreshConfig::rsvp_default().lifetime_secs() + 1.0);
    assert_eq!(expired.len(), 3);
    for s in expired {
        rsvp.teardown(&mut links, s).unwrap();
    }
    assert_eq!(links.total_reserved(), Bandwidth::ZERO);
    assert_eq!(rsvp.active_sessions(), 0);
}

/// A partitioned member (all incident links failed) is simply never
/// admitted to, while the rest of the group carries on.
#[test]
fn partitioned_member_is_isolated_not_fatal() {
    let (topo, group, routes, mut links, mut rsvp, mut rng) = setup();
    // Partition member node 12 completely.
    let victim = NodeId::new(12);
    for &(_, link) in topo.neighbors(victim) {
        links.fail_link(link).unwrap();
    }
    let victim_index = group.member_index(victim).unwrap();
    let source = NodeId::new(1);
    let mut controller = AdmissionController::new(
        PolicySpec::WdDb.build().unwrap(),
        RetrialPolicy::FixedLimit(5),
        routes.distances(source).expect("source is in the topology"),
    );
    let (ap, dist) = admit_release_batch(
        &mut controller,
        routes.routes_from(source).unwrap(),
        &mut links,
        &mut rsvp,
        &mut rng,
        300,
    );
    assert_eq!(dist[victim_index], 0);
    // WD/D+B sees B_victim = 0 instantly, so admission stays near perfect
    // unless other routes shared the failed links.
    assert!(ap > 0.9, "AP {ap} with one partitioned member");
}
