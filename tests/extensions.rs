//! Integration tests for the beyond-the-paper extensions, exercised
//! through the facade crate exactly as a downstream user would.

use anycast::analysis::scenario::{build_multigroup_scenario, GroupTraffic};
use anycast::prelude::*;

fn quick(lambda: f64, system: SystemSpec) -> ExperimentConfig {
    ExperimentConfig::paper_defaults(lambda, system)
        .with_warmup_secs(400.0)
        .with_measure_secs(1_200.0)
        .with_seed(55)
}

/// Multipath admission dominates single-path at every load level, and
/// never exceeds the GDI oracle by more than noise.
#[test]
fn multipath_sits_between_single_path_and_gdi() {
    let topo = topologies::mci();
    for lambda in [25.0, 40.0] {
        let single = run_experiment(
            &topo,
            &quick(lambda, SystemSpec::dac(PolicySpec::wd_dh_default(), 2)),
        );
        let multi = run_experiment(
            &topo,
            &quick(
                lambda,
                SystemSpec::dac_multipath(PolicySpec::wd_dh_default(), 2, 2),
            ),
        );
        let gdi = run_experiment(&topo, &quick(lambda, SystemSpec::GlobalDynamic));
        assert!(
            multi.admission_probability >= single.admission_probability - 0.01,
            "λ={lambda}: multipath {} vs single {}",
            multi.admission_probability,
            single.admission_probability
        );
        assert!(
            multi.admission_probability <= gdi.admission_probability + 0.02,
            "λ={lambda}: multipath {} vs GDI {}",
            multi.admission_probability,
            gdi.admission_probability
        );
    }
}

/// The analytical multigroup model and the multigroup simulation agree on
/// ordering: the replicated service out-admits the sparse one.
#[test]
fn multigroup_analysis_and_simulation_agree_on_ordering() {
    let topo = topologies::mci();
    let cdn_members: Vec<NodeId> = topologies::MCI_GROUP_MEMBERS.map(NodeId::new).to_vec();
    let db_members = vec![NodeId::new(2), NodeId::new(14)];

    // Simulation.
    let cfg = quick(35.0, SystemSpec::dac(PolicySpec::Ed, 1)).with_groups(vec![
        GroupSpec {
            members: cdn_members.clone(),
            share: 1.0,
        },
        GroupSpec {
            members: db_members.clone(),
            share: 1.0,
        },
    ]);
    let sim = run_experiment(&topo, &cfg);
    assert!(
        sim.per_group_ap[0] > sim.per_group_ap[1],
        "simulated: K=5 {} must beat K=2 {}",
        sim.per_group_ap[0],
        sim.per_group_ap[1]
    );

    // Analysis (ED with R=1 is exactly the Appendix-A regime).
    let spec = ScenarioSpec::paper_defaults(35.0);
    let scenario = build_multigroup_scenario(
        &topo,
        &spec,
        &[
            GroupTraffic {
                members: cdn_members,
                share: 1.0,
            },
            GroupTraffic {
                members: db_members,
                share: 1.0,
            },
        ],
        AnalyzedSystem::Ed1,
    );
    let p = predict_ap(&scenario, BlockingModel::ErlangB);
    assert!(p.converged);
    // Routes are group-major: first 45 belong to the CDN, next 18 to DB.
    let (cdn_routes, db_routes) = scenario.routes.split_at(9 * 5);
    let ap_of = |routes: &[anycast::analysis::scenario::RouteLoad], rejections: &[f64]| -> f64 {
        let offered: f64 = routes.iter().map(|r| r.offered_erlangs).sum();
        let admitted: f64 = routes
            .iter()
            .zip(rejections)
            .map(|(r, l)| r.offered_erlangs * (1.0 - l))
            .sum();
        admitted / offered
    };
    let cdn_ap = ap_of(cdn_routes, &p.route_rejection[..45]);
    let db_ap = ap_of(db_routes, &p.route_rejection[45..]);
    assert!(
        cdn_ap > db_ap,
        "analytical: K=5 {cdn_ap} must beat K=2 {db_ap}"
    );
    // Overall analytical AP within a few points of the simulation.
    assert!(
        (p.admission_probability - sim.admission_probability).abs() < 0.05,
        "analysis {} vs simulation {}",
        p.admission_probability,
        sim.admission_probability
    );
}

/// Burstiness monotonically erodes AP at equal mean rate.
#[test]
fn burstiness_monotone_penalty() {
    let topo = topologies::mci();
    let system = SystemSpec::dac(PolicySpec::wd_dh_default(), 2);
    let base = quick(30.0, system).with_measure_secs(2_400.0);
    let mut prev = f64::INFINITY;
    for b in [1.0, 1.5, 1.9] {
        let cfg = if b == 1.0 {
            base.clone()
        } else {
            base.clone().with_arrivals(ArrivalProcess::Bursty {
                burstiness: b,
                mean_sojourn_secs: 60.0,
            })
        };
        let m = run_experiment(&topo, &cfg);
        assert!(
            m.admission_probability <= prev + 0.02,
            "burstiness {b}: AP {} should not exceed previous {prev}",
            m.admission_probability
        );
        prev = m.admission_probability;
    }
}

/// A user-supplied topology (edge list) drives the whole pipeline.
#[test]
fn external_topology_end_to_end() {
    // A 6-node dumbbell: two triangles joined by one thin waist link.
    let text = "\
0 1 100000000
0 2 100000000
1 2 100000000
2 3 10000000
3 4 100000000
3 5 100000000
4 5 100000000
";
    let topo = anycast::net::io::parse_edge_list(text).unwrap();
    assert!(topo.is_connected());
    let cfg =
        ExperimentConfig::paper_defaults(4.0, SystemSpec::dac(PolicySpec::wd_dh_default(), 2))
            .with_group(vec![NodeId::new(0), NodeId::new(5)])
            .with_sources(vec![NodeId::new(1), NodeId::new(4)])
            .with_warmup_secs(300.0)
            .with_measure_secs(900.0)
            .with_seed(3);
    let m = run_experiment(&topo, &cfg);
    // Sources sit on both sides of the waist; most flows reach the local
    // member without crossing it, so AP stays high even though the waist
    // is thin.
    assert!(
        m.admission_probability > 0.8,
        "AP {} on the dumbbell",
        m.admission_probability
    );
    assert!(m.mean_network_utilization > 0.0);
}
