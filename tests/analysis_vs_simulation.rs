//! Cross-validation of Appendix A: the analytical fixed point and the
//! discrete-event simulation must agree, exactly as the paper's Tables 1
//! and 2 demonstrate ("the values ... obtained by both mathematical
//! analysis and computer simulation are almost identical").

use anycast::prelude::*;

fn simulate(lambda: f64, system: SystemSpec) -> f64 {
    let topo = topologies::mci();
    let seeds = [5u64, 6, 7];
    let total: f64 = seeds
        .iter()
        .map(|&s| {
            run_experiment(
                &topo,
                &ExperimentConfig::paper_defaults(lambda, system)
                    .with_warmup_secs(900.0)
                    .with_measure_secs(1_800.0)
                    .with_seed(s),
            )
            .admission_probability
        })
        .sum();
    total / seeds.len() as f64
}

/// Table 1: `<ED,1>` analysis vs simulation at the paper's rates.
#[test]
fn table1_ed1_agreement() {
    let topo = topologies::mci();
    for (lambda, tol) in [(20.0, 0.02), (35.0, 0.02), (50.0, 0.02)] {
        let analytic = predict_ap(
            &build_paper_scenario(&topo, lambda, AnalyzedSystem::Ed1),
            BlockingModel::ErlangB,
        )
        .admission_probability;
        let simulated = simulate(lambda, SystemSpec::dac(PolicySpec::Ed, 1));
        assert!(
            (analytic - simulated).abs() < tol,
            "λ={lambda}: analysis {analytic} vs simulation {simulated}"
        );
    }
}

/// Table 2: `SP` analysis vs simulation at the paper's rates.
#[test]
fn table2_sp_agreement() {
    let topo = topologies::mci();
    for (lambda, tol) in [(20.0, 0.02), (35.0, 0.02), (50.0, 0.02)] {
        let analytic = predict_ap(
            &build_paper_scenario(&topo, lambda, AnalyzedSystem::Sp),
            BlockingModel::ErlangB,
        )
        .admission_probability;
        let simulated = simulate(lambda, SystemSpec::ShortestPath);
        assert!(
            (analytic - simulated).abs() < tol,
            "λ={lambda}: analysis {analytic} vs simulation {simulated}"
        );
    }
}

/// The calibrated MCI reconstruction reproduces the paper's published
/// Table 1/2 values analytically (see DESIGN.md §2).
#[test]
fn published_table_values_reproduced() {
    let topo = topologies::mci();
    let table1 = [
        (5.0, 1.0),
        (20.0, 0.833933),
        (35.0, 0.584068),
        (50.0, 0.435654),
    ];
    for (lambda, paper) in table1 {
        let got = predict_ap(
            &build_paper_scenario(&topo, lambda, AnalyzedSystem::Ed1),
            BlockingModel::ErlangB,
        )
        .admission_probability;
        assert!(
            (got - paper).abs() < 2e-3,
            "Table 1 λ={lambda}: got {got}, paper {paper}"
        );
    }
    let table2 = [
        (5.0, 1.0),
        (20.0, 0.771044),
        (35.0, 0.444341),
        (50.0, 0.311417),
    ];
    for (lambda, paper) in table2 {
        let got = predict_ap(
            &build_paper_scenario(&topo, lambda, AnalyzedSystem::Sp),
            BlockingModel::ErlangB,
        )
        .admission_probability;
        assert!(
            (got - paper).abs() < 2e-3,
            "Table 2 λ={lambda}: got {got}, paper {paper}"
        );
    }
}

/// The two link-blocking models (exact Erlang-B and the paper's UAA)
/// agree through the full network fixed point.
#[test]
fn uaa_tracks_erlang_through_fixed_point() {
    let topo = topologies::mci();
    for system in [AnalyzedSystem::Ed1, AnalyzedSystem::Sp] {
        for lambda in [10.0, 25.0, 40.0] {
            let scenario = build_paper_scenario(&topo, lambda, system);
            let erl = predict_ap(&scenario, BlockingModel::ErlangB).admission_probability;
            let uaa = predict_ap(&scenario, BlockingModel::Uaa).admission_probability;
            assert!(
                (erl - uaa).abs() < 5e-3,
                "{system:?} λ={lambda}: Erlang {erl} vs UAA {uaa}"
            );
        }
    }
}

/// The `<ED,R>` analytical extension tracks simulation for R = 2.
#[test]
fn ed_r_extension_tracks_simulation() {
    let topo = topologies::mci();
    let spec = ScenarioSpec::paper_defaults(35.0);
    let (analytic, _) =
        anycast::analysis::scenario::approx_ap_ed_r(&topo, &spec, 2, BlockingModel::ErlangB);
    let simulated = simulate(35.0, SystemSpec::dac(PolicySpec::Ed, 2));
    // The extension ignores retry-induced load shift, so allow a wider
    // band than the R = 1 agreement.
    assert!(
        (analytic - simulated).abs() < 0.06,
        "analysis {analytic} vs simulation {simulated}"
    );
}
