//! End-to-end integration tests pinning the *shape* of the paper's
//! results: every observation the evaluation section (§5.2) draws must
//! hold in this reproduction, at shortened-but-stable run lengths.

use anycast::prelude::*;

fn config(lambda: f64, system: SystemSpec, seed: u64) -> ExperimentConfig {
    ExperimentConfig::paper_defaults(lambda, system)
        .with_warmup_secs(400.0)
        .with_measure_secs(900.0)
        .with_seed(seed)
}

fn ap(lambda: f64, system: SystemSpec) -> f64 {
    let topo = topologies::mci();
    // Average two seeds to stabilise comparisons.
    let a = run_experiment(&topo, &config(lambda, system, 11)).admission_probability;
    let b = run_experiment(&topo, &config(lambda, system, 22)).admission_probability;
    (a + b) / 2.0
}

/// §5.2.1 observation 1: AP increases with the retrial limit R.
#[test]
fn ap_increases_with_r() {
    for policy in [PolicySpec::Ed, PolicySpec::wd_dh_default()] {
        let r1 = ap(40.0, SystemSpec::dac(policy, 1));
        let r2 = ap(40.0, SystemSpec::dac(policy, 2));
        let r5 = ap(40.0, SystemSpec::dac(policy, 5));
        assert!(
            r2 > r1,
            "{}: R=2 ({r2}) must beat R=1 ({r1})",
            policy.name()
        );
        assert!(
            r5 >= r2 - 0.01,
            "{}: R=5 ({r5}) must not fall below R=2 ({r2})",
            policy.name()
        );
    }
}

/// §5.2.1 observation 2: the R = 1 → 2 improvement dominates; gains
/// beyond are marginal.
#[test]
fn retrial_gains_saturate() {
    let r1 = ap(40.0, SystemSpec::dac(PolicySpec::Ed, 1));
    let r2 = ap(40.0, SystemSpec::dac(PolicySpec::Ed, 2));
    let r4 = ap(40.0, SystemSpec::dac(PolicySpec::Ed, 4));
    let r5 = ap(40.0, SystemSpec::dac(PolicySpec::Ed, 5));
    let first_jump = r2 - r1;
    let late_jump = r5 - r4;
    assert!(
        first_jump > 3.0 * late_jump.max(0.0),
        "1→2 jump {first_jump} should dwarf 4→5 jump {late_jump}"
    );
}

/// §5.2.1 observation 3: systems with lower AP are more sensitive to R.
#[test]
fn weaker_systems_gain_more_from_retrials() {
    let ed_gain =
        ap(40.0, SystemSpec::dac(PolicySpec::Ed, 2)) - ap(40.0, SystemSpec::dac(PolicySpec::Ed, 1));
    let wddb_gain = ap(40.0, SystemSpec::dac(PolicySpec::WdDb, 2))
        - ap(40.0, SystemSpec::dac(PolicySpec::WdDb, 1));
    assert!(
        ed_gain > wddb_gain,
        "ED gains {ed_gain} from a retry, WD/D+B only {wddb_gain}"
    );
}

/// §5.2.2 observation 1: GDI best, SP worst at load; all equal at
/// trivial load.
#[test]
fn gdi_best_sp_worst() {
    let lambda = 35.0;
    let gdi = ap(lambda, SystemSpec::GlobalDynamic);
    let sp = ap(lambda, SystemSpec::ShortestPath);
    for policy in [
        PolicySpec::Ed,
        PolicySpec::wd_dh_default(),
        PolicySpec::WdDb,
    ] {
        let dac = ap(lambda, SystemSpec::dac(policy, 2));
        assert!(
            gdi >= dac - 0.01,
            "GDI ({gdi}) must dominate {} ({dac})",
            policy.name()
        );
        assert!(
            dac > sp + 0.02,
            "{} ({dac}) must beat SP ({sp})",
            policy.name()
        );
    }
    // Trivial load: everyone admits everything.
    for system in [
        SystemSpec::dac(PolicySpec::Ed, 1),
        SystemSpec::ShortestPath,
        SystemSpec::GlobalDynamic,
    ] {
        assert!(ap(1.0, system) > 0.999);
    }
}

/// §5.2.2 observation 2: the biased algorithms beat ED, and land close
/// to GDI.
#[test]
fn biased_algorithms_beat_ed_and_approach_gdi() {
    let lambda = 30.0;
    let ed = ap(lambda, SystemSpec::dac(PolicySpec::Ed, 2));
    let wddh = ap(lambda, SystemSpec::dac(PolicySpec::wd_dh_default(), 2));
    let wddb = ap(lambda, SystemSpec::dac(PolicySpec::WdDb, 2));
    let gdi = ap(lambda, SystemSpec::GlobalDynamic);
    assert!(wddh > ed, "WD/D+H ({wddh}) must beat ED ({ed})");
    assert!(wddb > ed, "WD/D+B ({wddb}) must beat ED ({ed})");
    // "Close to GDI": within 10 points where ED trails much further.
    assert!(
        gdi - wddh.max(wddb) < 0.10,
        "biased DAC (best {}) should be close to GDI ({gdi})",
        wddh.max(wddb)
    );
}

/// §5.2.2 observation 3: ED needs the most retrials, WD/D+B the fewest.
#[test]
fn retrial_overhead_ordering() {
    let topo = topologies::mci();
    let lambda = 40.0;
    let tries = |policy: PolicySpec| -> f64 {
        run_experiment(&topo, &config(lambda, SystemSpec::dac(policy, 2), 11)).mean_tries
    };
    let ed = tries(PolicySpec::Ed);
    let wddh = tries(PolicySpec::wd_dh_default());
    let wddb = tries(PolicySpec::WdDb);
    assert!(ed > wddh, "ED tries {ed} must exceed WD/D+H {wddh}");
    assert!(wddh > wddb, "WD/D+H tries {wddh} must exceed WD/D+B {wddb}");
}

/// AP decreases monotonically (within noise) in the arrival rate.
#[test]
fn ap_monotone_in_lambda() {
    let mut prev = 1.1;
    for lambda in [10.0, 20.0, 30.0, 40.0, 50.0] {
        let v = ap(lambda, SystemSpec::dac(PolicySpec::wd_dh_default(), 2));
        assert!(
            v < prev + 0.02,
            "AP must not rise with load: {v} at λ={lambda}, prev {prev}"
        );
        prev = v;
    }
    assert!(
        prev < 0.7,
        "λ=50 must show substantial blocking, got {prev}"
    );
}

/// Signaling overhead: messages per request grow with the retry level
/// and every admitted flow's reservations are eventually torn down.
#[test]
fn message_accounting_consistency() {
    let topo = topologies::mci();
    let m = run_experiment(&topo, &config(35.0, SystemSpec::dac(PolicySpec::Ed, 2), 11));
    // Each successful admission produces equal PATH and RESV hop counts;
    // each failure produces equal PATH-prefix and RESV_ERR counts; so
    // PATH = RESV + RESV_ERR exactly.
    assert_eq!(
        m.messages.count(MessageKind::Path),
        m.messages.count(MessageKind::Resv) + m.messages.count(MessageKind::ResvErr),
        "PATH messages must split into RESV confirmations and RESV_ERR aborts"
    );
    assert!(m.messages.count(MessageKind::PathTear) > 0);
    assert!(m.messages_per_request > 1.0);
}
