//! Degrading gracefully under link failure — beyond the paper's fault-free
//! assumption (§3 assumes "the network has no faults"; this example checks
//! what the algorithms buy you when that fails).
//!
//! A link on the fixed route to one group member dies mid-run (modelled by
//! saturating it, which is indistinguishable to admission control). The SP
//! baseline keeps hammering the dead route; WD/D+H learns from failures
//! and shifts traffic to surviving members; WD/D+B sees the zero route
//! bandwidth instantly.
//!
//! Run with: `cargo run --release --example resilient_admission`

use anycast::prelude::*;

struct Lab {
    links: LinkStateTable,
    rsvp: ReservationEngine,
    rng: SimRng,
}

impl Lab {
    fn new(topo: &Topology) -> Self {
        Lab {
            links: LinkStateTable::with_uniform_fraction(topo, Bandwidth::from_mbps(100), 0.2),
            rsvp: ReservationEngine::new(),
            rng: SimRng::seed_from(7),
        }
    }
}

fn main() {
    let topo = topologies::mci();
    let group = AnycastGroup::new("svc", topologies::MCI_GROUP_MEMBERS.map(NodeId::new))
        .expect("static group is non-empty");
    let routes = RouteTable::shortest_paths(&topo, &group);
    let source = NodeId::new(15);
    let demand = Bandwidth::from_kbps(64);
    let batch = 300;

    // The failure: kill the first link of the fixed route to the member
    // nearest to our source.
    let victim_member = routes.nearest_member(source).unwrap();
    let victim_link = routes.routes_from(source).unwrap()[victim_member].links()[0];

    println!("source {source}; failing {victim_link} on the route to member #{victim_member}\n");
    println!(
        "{:<10} {:>14} {:>14} {:>12}",
        "policy", "AP before", "AP after", "avg tries after"
    );

    for spec in [
        PolicySpec::Ed,
        PolicySpec::wd_dh_default(),
        PolicySpec::WdDb,
    ] {
        let mut lab = Lab::new(&topo);
        let mut controller = AdmissionController::new(
            spec.build().expect("valid policy"),
            RetrialPolicy::FixedLimit(2),
            routes.distances(source).expect("source is in the topology"),
        );
        let before = run_batch(&mut lab, &mut controller, &routes, source, demand, batch);

        // Fail the link: consume all its remaining capacity.
        let avail = lab.links.available(victim_link);
        if !avail.is_zero() {
            lab.links.reserve(victim_link, avail).expect("link is live");
        }
        let after = run_batch(&mut lab, &mut controller, &routes, source, demand, batch);

        println!(
            "{:<10} {:>14.3} {:>14.3} {:>12.3}",
            spec.name(),
            before.0,
            after.0,
            after.1
        );
    }

    // SP for contrast: no alternative destination exists by design.
    let mut lab = Lab::new(&topo);
    let sp = ShortestPathSystem::new(victim_member);
    let before = run_sp_batch(&mut lab, &sp, &routes, source, demand, batch);
    let avail = lab.links.available(victim_link);
    lab.links.reserve(victim_link, avail).expect("link is live");
    let after = run_sp_batch(&mut lab, &sp, &routes, source, demand, batch);
    println!(
        "{:<10} {:>14.3} {:>14.3} {:>12}",
        "SP", before, after, "1.000"
    );
    println!(
        "\nSP collapses to zero; the randomized DAC policies keep admitting on surviving routes."
    );
}

/// Admits a batch and immediately releases, returning (AP, mean tries).
fn run_batch(
    lab: &mut Lab,
    controller: &mut AdmissionController,
    routes: &RouteTable,
    source: NodeId,
    demand: Bandwidth,
    n: usize,
) -> (f64, f64) {
    let mut admitted = 0usize;
    let mut tries = 0u64;
    for _ in 0..n {
        let out = controller.admit(
            routes.routes_from(source).unwrap(),
            &mut lab.links,
            &mut lab.rsvp,
            demand,
            &mut lab.rng,
        );
        tries += u64::from(out.tries);
        if let Some(flow) = out.admitted {
            admitted += 1;
            lab.rsvp
                .teardown(&mut lab.links, flow.session)
                .expect("session is live");
        }
    }
    (admitted as f64 / n as f64, tries as f64 / n as f64)
}

fn run_sp_batch(
    lab: &mut Lab,
    sp: &ShortestPathSystem,
    routes: &RouteTable,
    source: NodeId,
    demand: Bandwidth,
    n: usize,
) -> f64 {
    let mut admitted = 0usize;
    for _ in 0..n {
        let out = sp.admit(
            routes.routes_from(source).unwrap(),
            &mut lab.links,
            &mut lab.rsvp,
            demand,
        );
        if let Some(flow) = out.admitted {
            admitted += 1;
            lab.rsvp
                .teardown(&mut lab.links, flow.session)
                .expect("session is live");
        }
    }
    admitted as f64 / n as f64
}
