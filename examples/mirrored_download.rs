//! Mirrored-server downloads — the paper's §1 motivating application.
//!
//! An e-commerce provider mirrors its download service behind one anycast
//! address. Clients open QoS-protected flows (say, 256 kb/s paid download
//! streams) toward the group; the network must pick a mirror per flow.
//! This example drives the admission controllers directly — without the
//! closed-loop experiment harness — to show the raw API: fixed routes,
//! per-source controllers, weighted selection, reservation and teardown,
//! and how the WD/D+H history steers traffic when one mirror's
//! neighbourhood congests.
//!
//! Run with: `cargo run --release --example mirrored_download`

use anycast::prelude::*;

fn main() {
    let topo = topologies::mci();
    let group = AnycastGroup::new(
        "downloads.example.com",
        topologies::MCI_GROUP_MEMBERS.map(NodeId::new),
    )
    .expect("static group is non-empty");
    let routes = RouteTable::shortest_paths(&topo, &group);
    let mut links = LinkStateTable::with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2);
    let mut rsvp = ReservationEngine::new();
    let mut rng = SimRng::seed_from(2024);

    // One AC-router per client point-of-presence. Each keeps its own
    // local admission history (the "cheap" dynamic signal of §4.3.2).
    let client = NodeId::new(9);
    let mut controller = AdmissionController::new(
        PolicySpec::wd_dh_default().build().expect("valid policy"),
        RetrialPolicy::FixedLimit(2),
        routes.distances(client).expect("client is in the topology"),
    );

    let demand = Bandwidth::from_kbps(64);
    let mirror_names: Vec<String> = group.members().iter().map(|m| m.to_string()).collect();
    println!("client at {client}, mirrors at {}", mirror_names.join(", "));
    println!(
        "initial weights: {:?}\n",
        rounded(&controller.current_weights(routes.routes_from(client).unwrap(), &links))
    );

    // Phase 1: a burst of downloads on an idle network. Each download
    // holds its reservation (sessions pile up, as in a busy hour).
    let mut sessions = Vec::new();
    let mut admitted = 0;
    for _ in 0..100 {
        let outcome = controller.admit(
            routes.routes_from(client).unwrap(),
            &mut links,
            &mut rsvp,
            demand,
            &mut rng,
        );
        if let Some(flow) = outcome.admitted {
            admitted += 1;
            sessions.push(flow.session);
        }
    }
    println!("phase 1 (idle network): {admitted}/100 downloads admitted");
    println!("signaling so far: {}", rsvp.ledger());

    // Phase 2: a flash crowd elsewhere congests the nearest mirror's
    // *own* access route; watch the controller adapt.
    let nearest = routes.nearest_member(client).unwrap();
    let nearest_node = group.members()[nearest];
    let dead_route = &routes.routes_from(client).unwrap()[nearest];
    let bottleneck = *dead_route.links().last().expect("nearest member is remote");
    let avail = links.available(bottleneck);
    if !avail.is_zero() {
        links
            .reserve(bottleneck, avail)
            .expect("saturating a live link");
    }
    println!(
        "\nsaturated {bottleneck}, the access link of mirror {nearest_node} (member #{nearest})"
    );

    let mut admitted2 = 0;
    let mut to_nearest = 0;
    for _ in 0..200 {
        let outcome = controller.admit(
            routes.routes_from(client).unwrap(),
            &mut links,
            &mut rsvp,
            demand,
            &mut rng,
        );
        if let Some(flow) = outcome.admitted {
            admitted2 += 1;
            if flow.member_index == nearest {
                to_nearest += 1;
            }
            sessions.push(flow.session);
        }
    }
    let weights = controller.current_weights(routes.routes_from(client).unwrap(), &links);
    println!("phase 2 (congested nearest mirror): {admitted2}/200 admitted, {to_nearest} to the dead mirror");
    println!("history h_i = {:?}", controller.history().entries());
    println!("adapted weights: {:?}", rounded(&weights));
    assert_eq!(to_nearest, 0, "the dead mirror cannot admit");
    assert!(
        admitted2 > 150,
        "surviving mirrors must carry the load, got {admitted2}"
    );
    assert!(
        weights[nearest] < 1.0 / group.len() as f64,
        "history must demote the congested mirror: {weights:?}"
    );

    // Phase 3: downloads finish; every reservation is returned.
    for s in sessions {
        rsvp.teardown(&mut links, s).expect("sessions are live");
    }
    println!("\nall downloads finished; residual reserved bandwidth on client-side routes:");
    for (i, path) in routes.routes_from(client).unwrap().iter().enumerate() {
        println!(
            "  to member #{i} ({} hops): bottleneck {}",
            path.hops(),
            links.min_available_on(path)
        );
    }
}

fn rounded(w: &[f64]) -> Vec<f64> {
    w.iter().map(|x| (x * 1_000.0).round() / 1_000.0).collect()
}
