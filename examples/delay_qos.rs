//! Delay-bounded anycast flows — the §6 extension in action.
//!
//! The paper's admission control reserves bandwidth, and §6 sketches how a
//! *delay* requirement maps onto bandwidth under rate-based schedulers
//! (WFQ / Virtual Clock) via the Parekh–Gallager bound. This example
//! admits video-conference-like flows with a 150 ms end-to-end delay
//! budget: the required rate depends on the *route length*, so farther
//! group members genuinely cost more — sharpening the paper's argument for
//! distance-discriminating destination selection.
//!
//! Run with: `cargo run --release --example delay_qos`

use anycast::dac::qos::{guaranteed_delay, required_bandwidth, FlowSpec};
use anycast::prelude::*;

fn main() {
    let topo = topologies::mci();
    let group = AnycastGroup::new("conference", topologies::MCI_GROUP_MEMBERS.map(NodeId::new))
        .expect("static group is non-empty");
    let routes = RouteTable::shortest_paths(&topo, &group);
    let mut links = LinkStateTable::with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2);
    let mut rsvp = ReservationEngine::new();

    // A bursty interactive flow: 8 kB burst, 1500 B packets, 384 kb/s
    // sustained, with a 150 ms end-to-end delay budget.
    let spec = FlowSpec {
        burst_bytes: 8_000,
        max_packet_bytes: 1_500,
        sustained_rate: Bandwidth::from_kbps(384),
    };
    let delay_budget = 0.150;
    let link_capacity = Bandwidth::from_mbps(100);

    let source = NodeId::new(13);
    println!(
        "source {source}, delay budget {:.0} ms, sustained rate {}",
        delay_budget * 1e3,
        spec.sustained_rate
    );
    println!();
    println!(
        "{:<10} {:>6} {:>14} {:>16}",
        "member", "hops", "required bw", "achieved delay"
    );

    // The delay→bandwidth mapping per candidate member.
    let mut demands = Vec::new();
    for (i, path) in routes.routes_from(source).unwrap().iter().enumerate() {
        let member = group.members()[i];
        match required_bandwidth(&spec, delay_budget, path.hops(), link_capacity, 1_500) {
            Ok(bw) => {
                let achieved = guaranteed_delay(&spec, bw, path.hops(), link_capacity, 1_500);
                println!(
                    "{:<10} {:>6} {:>14} {:>13.1} ms",
                    member.to_string(),
                    path.hops(),
                    bw.to_string(),
                    achieved * 1e3
                );
                demands.push(Some(bw));
            }
            Err(e) => {
                println!(
                    "{:<10} {:>6} infeasible: {e}",
                    member.to_string(),
                    path.hops()
                );
                demands.push(None);
            }
        }
    }

    // Admit toward the cheapest feasible member (a delay-aware variant of
    // the paper's distance discrimination).
    let best = demands
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|bw| (i, bw)))
        .min_by_key(|&(_, bw)| bw)
        .expect("at least one member is feasible");
    let route = &routes.routes_from(source).unwrap()[best.0];
    let outcome = rsvp
        .probe_and_reserve(&mut links, route, best.1)
        .expect("idle network admits the first flow");
    println!();
    println!(
        "admitted toward member #{} reserving {} ({} hops); route bottleneck was {}",
        best.0,
        best.1,
        route.hops(),
        outcome.route_bandwidth
    );

    // Tighten the budget until the mapping reports infeasibility.
    let mut budget = delay_budget;
    while required_bandwidth(&spec, budget, route.hops(), link_capacity, 1_500).is_ok() {
        budget *= 0.5;
    }
    println!(
        "halving the budget repeatedly: first infeasible at {:.3} ms (fixed per-hop latency floor)",
        budget * 1e3
    );
}
