//! Capacity planning with the analytical model — no simulation required.
//!
//! Appendix A's fixed point answers "what admission probability will this
//! network deliver at rate λ?" in microseconds, which makes it a planning
//! tool: sweep λ, invert for the maximum sustainable rate at a target AP,
//! and compare provisioning options (bigger anycast partition vs more
//! group members) before touching a simulator.
//!
//! Run with: `cargo run --release --example capacity_planning`

use anycast::analysis::planning::sustainable_rate;
use anycast::prelude::*;

/// Largest λ with predicted AP ≥ `target` (the library's bisection).
fn max_rate_for_target(topo: &Topology, spec_at: impl Fn(f64) -> ScenarioSpec, target: f64) -> f64 {
    sustainable_rate(
        topo,
        spec_at,
        AnalyzedSystem::Ed1,
        BlockingModel::ErlangB,
        target,
        500.0,
    )
}

fn main() {
    let topo = topologies::mci();

    println!("Predicted admission probability on the MCI backbone (<ED,1>):");
    println!("{:>8} {:>12} {:>12}", "lambda", "Erlang-B", "UAA");
    for lambda in [5.0, 15.0, 25.0, 35.0, 45.0] {
        let scenario = build_paper_scenario(&topo, lambda, AnalyzedSystem::Ed1);
        let erl = predict_ap(&scenario, BlockingModel::ErlangB);
        let uaa = predict_ap(&scenario, BlockingModel::Uaa);
        println!(
            "{:>8.1} {:>12.6} {:>12.6}",
            lambda, erl.admission_probability, uaa.admission_probability
        );
    }

    // Invert: what rate keeps AP at three nines of the target levels?
    println!();
    for target in [0.99, 0.95, 0.90] {
        let max_rate = max_rate_for_target(&topo, ScenarioSpec::paper_defaults, target);
        println!("max sustainable rate for AP >= {target:.2}: {max_rate:.2} flows/s");
    }

    // Provisioning comparison: double the anycast partition vs double the
    // group size (members at every even router).
    println!();
    let base = max_rate_for_target(&topo, ScenarioSpec::paper_defaults, 0.95);
    let double_partition = max_rate_for_target(
        &topo,
        |l| {
            let mut s = ScenarioSpec::paper_defaults(l);
            s.anycast_fraction = 0.4;
            s
        },
        0.95,
    );
    let bigger_group = max_rate_for_target(
        &topo,
        |l| {
            let mut s = ScenarioSpec::paper_defaults(l);
            s.group_members = (0..19).filter(|n| n % 2 == 0).map(NodeId::new).collect();
            s
        },
        0.95,
    );
    println!("capacity at AP >= 0.95:");
    println!("  paper setup (20% partition, K = 5):   {base:.1} flows/s");
    println!(
        "  40% partition, K = 5:                 {double_partition:.1} flows/s ({:.2}x)",
        double_partition / base
    );
    println!(
        "  20% partition, K = 10 (even routers): {bigger_group:.1} flows/s ({:.2}x)",
        bigger_group / base
    );

    // Show which links the model says saturate first at the base capacity.
    println!();
    let scenario = build_paper_scenario(&topo, base, AnalyzedSystem::Ed1);
    let p = predict_ap(&scenario, BlockingModel::ErlangB);
    let mut hot: Vec<(usize, f64)> = p.link_blocking.iter().copied().enumerate().collect();
    hot.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("hottest links at {base:.1} flows/s (blocking probability):");
    for (l, b) in hot.iter().take(5) {
        let link = topo.link(LinkId::new(*l as u32)).expect("link exists");
        println!("  {} ({}-{}): {:.4}", link.id(), link.a(), link.b(), b);
    }
}
