//! Quickstart: admit anycast flows on the paper's MCI backbone.
//!
//! Builds the §5.1 experimental setup, runs the DAC procedure with the
//! WD/D+H destination-selection algorithm, and prints the metrics the
//! paper evaluates: admission probability, retrials, and signaling
//! overhead.
//!
//! Run with: `cargo run --release --example quickstart`

use anycast::prelude::*;

fn main() {
    // The 19-node MCI ISP backbone of Figure 2, with an anycast group at
    // routers {0, 4, 8, 12, 16} and sources at the odd routers.
    let topo = topologies::mci();

    println!(
        "MCI backbone: {} nodes, {} links",
        topo.node_count(),
        topo.link_count()
    );
    println!();
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12}",
        "system", "AP", "mean tries", "msgs/req", "active flows"
    );

    // Evaluate the three DAC variants and both baselines at a moderate
    // arrival rate (25 flows/s, each 64 kb/s for 180 s on average).
    for system in [
        SystemSpec::dac(PolicySpec::Ed, 2),
        SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
        SystemSpec::dac(PolicySpec::WdDb, 2),
        SystemSpec::ShortestPath,
        SystemSpec::GlobalDynamic,
    ] {
        let config = ExperimentConfig::paper_defaults(25.0, system)
            .with_warmup_secs(600.0)
            .with_measure_secs(1_200.0)
            .with_seed(42);
        let m = run_experiment(&topo, &config);
        println!(
            "{:<12} {:>10.4} {:>12.4} {:>12.2} {:>12.0}",
            m.label,
            m.admission_probability,
            m.mean_tries,
            m.messages_per_request,
            m.mean_active_flows
        );
    }

    println!();
    println!("Higher AP with low tries is better; GDI is the unrealizable oracle.");
}
