//! A realistic multi-service backbone — every extension at once.
//!
//! Three anycast services with different replication degrees share the
//! anycast partition; traffic is bursty (MMPP-2) rather than Poisson; and
//! the operator compares the paper's single-path DAC against the
//! multipath variant to decide whether routing diversity is worth
//! deploying.
//!
//! Run with: `cargo run --release --example multi_service`

use anycast::prelude::*;

fn services() -> Vec<GroupSpec> {
    vec![
        // CDN: five replicas, half of all traffic.
        GroupSpec {
            members: [0u32, 4, 8, 12, 16].map(NodeId::new).to_vec(),
            share: 2.0,
        },
        // Payments: two sites.
        GroupSpec {
            members: [2u32, 14].map(NodeId::new).to_vec(),
            share: 1.0,
        },
        // Legacy mainframe: one site (unicast in anycast clothing).
        GroupSpec {
            members: [10u32].map(NodeId::new).to_vec(),
            share: 1.0,
        },
    ]
}

fn main() {
    let topo = topologies::mci();
    let lambda = 35.0;
    let arrivals = ArrivalProcess::Bursty {
        burstiness: 1.6,
        mean_sojourn_secs: 60.0,
    };

    println!("three services on the MCI backbone, bursty arrivals, lambda = {lambda}");
    println!();
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "system", "overall", "CDN K=5", "pay K=2", "legacy", "msgs/req"
    );

    for system in [
        SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
        SystemSpec::dac_multipath(PolicySpec::wd_dh_default(), 2, 2),
        SystemSpec::ShortestPath,
        SystemSpec::GlobalDynamic,
    ] {
        let config = ExperimentConfig::paper_defaults(lambda, system)
            .with_groups(services())
            .with_arrivals(arrivals)
            .with_warmup_secs(900.0)
            .with_measure_secs(2_400.0)
            .with_seed(2001);
        let m = run_experiment(&topo, &config);
        println!(
            "{:<22} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>10.2}",
            m.label,
            m.admission_probability,
            m.per_group_ap[0],
            m.per_group_ap[1],
            m.per_group_ap[2],
            m.messages_per_request,
        );
    }

    println!();
    println!("Replication degree dominates: the K=5 CDN rides out bursts the");
    println!("single-site service cannot, whatever the admission algorithm.");
    println!();
    println!("Note how GDI loses its crown here: it is a per-request oracle, not");
    println!("an optimal online policy — greedily admitting every feasible flow");
    println!("onto long detours consumes bandwidth future requests needed. The");
    println!("paper's single-service experiments never stress that distinction.");
}
