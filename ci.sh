#!/usr/bin/env sh
# Local CI gate: formatting, lints, and the full test suite.
#
# Usage: ./ci.sh
#
# Runs offline — all external dependencies are vendored under vendor/.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> bench smoke (parallel sweep must match serial; writes BENCH_pr2.json)"
# bench_pr2 runs every workload at --jobs 1 and --jobs N and asserts the
# results are bit-identical, so this doubles as the determinism gate.
cargo run --release --offline -p anycast-bench --bin bench_pr2 -- --smoke --jobs 2

echo "CI OK"
