#!/usr/bin/env sh
# Local CI gate: formatting, lints, and the full test suite.
#
# Usage: ./ci.sh
#
# Runs offline — all external dependencies are vendored under vendor/.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo clippy (sharded link-state + batch evaluation crates, lib-only pass)"
# The crates the parallel in-batch evaluator lives in, linted on their
# own so a workspace-level cfg or feature change cannot mask a warning.
cargo clippy -p anycast-net -p anycast-dac --offline -- -D warnings

echo "==> cargo clippy (estimator crate, lib-only pass)"
cargo clippy -p anycast-estimator --offline -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> bench smoke (parallel sweep must match serial)"
# bench_pr2 runs every workload at --jobs 1 and --jobs N and asserts the
# results are bit-identical, so this doubles as the determinism gate.
# --out keeps the checked-in BENCH_pr2.json snapshot untouched.
cargo run --release --offline -p anycast-bench --bin bench_pr2 -- --smoke --jobs 2 --out /tmp/BENCH_pr2_ci.json

echo "==> telemetry smoke (bench_pr3: off/null/ring must be bit-identical)"
cargo run --release --offline -p anycast-bench --bin bench_pr3 -- --smoke --jobs 2 --out /tmp/BENCH_pr3_ci.json

echo "==> two-phase smoke (bench_pr4: degenerate two-phase must match atomic)"
cargo run --release --offline -p anycast-bench --bin bench_pr4 -- --smoke --jobs 2 --out /tmp/BENCH_pr4_ci.json

echo "==> batched admission smoke (bench_pr5: batched must match sequential)"
cargo run --release --offline -p anycast-bench --bin bench_pr5 -- --smoke --jobs 2 --out /tmp/BENCH_pr5_ci.json

echo "==> online engine smoke (bench_pr6: online submit/pump must match offline)"
cargo run --release --offline -p anycast-bench --bin bench_pr6 -- --smoke --jobs 2 --out /tmp/BENCH_pr6_ci.json

echo "==> parallel batch smoke (bench_pr7: batch_jobs=N must match batch_jobs=1)"
cargo run --release --offline -p anycast-bench --bin bench_pr7 -- --smoke --jobs 2 --out /tmp/BENCH_pr7_ci.json

echo "==> estimator smoke (bench_pr8: |AP_est - AP_sim| <= 0.05 on every cell)"
# The binary hard-asserts the error bound per cell before writing the
# artifact, so a plain exit-status check is the accuracy gate.
cargo run --release --offline -p anycast-bench --bin bench_pr8 -- --smoke --jobs 2 --out /tmp/BENCH_pr8_ci.json

echo "==> daemon overload smoke (bench_pr9: shedding must bound p99 under overload)"
# The binary hard-asserts the accounting identity (every request is
# admitted, shed, a duplicate, or a shutdown rejection) and the p99
# bound in every shedding cell before writing the artifact.
cargo run --release --offline -p anycast-bench --bin bench_pr9 -- --smoke --out /tmp/BENCH_pr9_ci.json

echo "==> route-oracle smoke (bench_pr10: oracle must match the table on a fat-tree)"
# The binary hard-asserts that the on-demand route oracle's metrics are
# bit-identical to the precomputed table's on a small fat-tree before
# writing the artifact.
cargo run --release --offline -p anycast-bench --bin bench_pr10 -- --smoke --out /tmp/BENCH_pr10_ci.json

echo "==> NaN gate (no bench artifact may contain NaN or infinite values)"
! grep -qiE 'nan|inf' /tmp/BENCH_pr2_ci.json /tmp/BENCH_pr3_ci.json \
    /tmp/BENCH_pr4_ci.json /tmp/BENCH_pr5_ci.json /tmp/BENCH_pr6_ci.json \
    /tmp/BENCH_pr7_ci.json /tmp/BENCH_pr8_ci.json /tmp/BENCH_pr9_ci.json \
    /tmp/BENCH_pr10_ci.json BENCH_pr8.json BENCH_pr9.json BENCH_pr10.json

echo "==> batch-vs-sequential CLI gate (--batch must not change a single byte)"
cargo run --release --offline -p anycast-cli --bin anycast -- \
    simulate --lambda 45 --system gdi --warmup 20 --measure 80 \
    > /tmp/seq_metrics.txt
cargo run --release --offline -p anycast-cli --bin anycast -- \
    simulate --lambda 45 --system gdi --warmup 20 --measure 80 --batch \
    > /tmp/batch_metrics.txt
diff /tmp/seq_metrics.txt /tmp/batch_metrics.txt

echo "==> parallel-vs-sequential batch gate (--jobs must not change a single byte)"
cargo run --release --offline -p anycast-cli --bin anycast -- \
    simulate --lambda 45 --system gdi --warmup 20 --measure 80 --batch --jobs 1 \
    > /tmp/batch_j1_metrics.txt
cargo run --release --offline -p anycast-cli --bin anycast -- \
    simulate --lambda 45 --system gdi --warmup 20 --measure 80 --batch --jobs 4 \
    > /tmp/batch_j4_metrics.txt
diff /tmp/batch_metrics.txt /tmp/batch_j1_metrics.txt
diff /tmp/batch_j1_metrics.txt /tmp/batch_j4_metrics.txt

echo "==> route-oracle CLI gate (--route-mode oracle must not change a single byte)"
cargo run --release --offline -p anycast-cli --bin anycast -- \
    simulate --lambda 30 --system wddh --topology fat_tree:4 --group 28,31,34 \
    --warmup 20 --measure 80 \
    > /tmp/table_metrics.txt
cargo run --release --offline -p anycast-cli --bin anycast -- \
    simulate --lambda 30 --system wddh --topology fat_tree:4 --group 28,31,34 \
    --warmup 20 --measure 80 --route-mode oracle \
    > /tmp/oracle_metrics.txt
diff /tmp/table_metrics.txt /tmp/oracle_metrics.txt
rm -f /tmp/table_metrics.txt /tmp/oracle_metrics.txt

echo "==> NaN gate (no printed metric may be NaN or infinite)"
! grep -qiE 'nan|inf' /tmp/seq_metrics.txt
rm -f /tmp/seq_metrics.txt /tmp/batch_metrics.txt \
    /tmp/batch_j1_metrics.txt /tmp/batch_j4_metrics.txt

echo "==> two-phase leak smoke (lossy signalling must leak zero held bandwidth)"
# 5% loss on every signalling message kind plus real per-hop latency:
# timeouts, hold expiry and retransmission all fire, and the run must
# still end with every pending hold released.
plan=$(mktemp)
cat > "$plan" <<'EOF'
[signaling]
path_loss_probability = 0.05
resv_loss_probability = 0.05
resv_err_loss_probability = 0.05
extra_delay_secs = 0.02
EOF
cargo run --release --offline -p anycast-cli --bin anycast -- \
    simulate --lambda 40 --r 2 --warmup 10 --measure 60 \
    --signaling-delay 0.02 --setup-timeout 0.5 --faults "$plan" \
    | tee /tmp/two_phase_smoke.txt
grep -q 'leaked holds          0 bps' /tmp/two_phase_smoke.txt
rm -f "$plan" /tmp/two_phase_smoke.txt

echo "==> trace smoke (exported JSONL must parse and contain a rejection)"
trace_dir=$(mktemp -d)
cargo run --release --offline -p anycast-cli --bin anycast -- \
    trace saturated --lambda 50 --r 2 --warmup 10 --measure 60 \
    --out "$trace_dir" --check
grep -q '"kind":"rejection"' "$trace_dir"/trace_saturated_seed1.jsonl
rm -rf "$trace_dir"

echo "==> record/replay gate (virtual-time replay must reproduce simulate --batch byte-for-byte)"
arrival_trace=$(mktemp)
cargo run --release --offline -p anycast-cli --bin anycast -- \
    record --lambda 25 --system wddh --warmup 20 --measure 60 --seed 9 \
    --out "$arrival_trace"
cargo run --release --offline -p anycast-cli --bin anycast -- \
    simulate --lambda 25 --system wddh --warmup 20 --measure 60 --seed 9 --batch \
    > /tmp/offline_metrics.txt
# replay prints metrics on stdout in simulate's exact format; auxiliary
# lines go to stderr, so the two outputs must be byte-identical.
cargo run --release --offline -p anycast-cli --bin anycast -- \
    replay --trace "$arrival_trace" --lambda 25 --system wddh \
    --warmup 20 --measure 60 --seed 9 --batch \
    > /tmp/replay_metrics.txt 2>/dev/null
diff /tmp/offline_metrics.txt /tmp/replay_metrics.txt
rm -f "$arrival_trace" /tmp/offline_metrics.txt /tmp/replay_metrics.txt

echo "==> daemon smoke (admit/stats/shutdown round-trip over a real TCP socket)"
cargo build --release --offline -p anycast-daemon
daemon_log=$(mktemp)
./target/release/anycast-daemon --listen 127.0.0.1:0 --speed 50 --seed 3 \
    > "$daemon_log" &
daemon_pid=$!
for _ in $(seq 1 100); do
    grep -q 'listening on tcp' "$daemon_log" && break
    sleep 0.1
done
port=$(sed -n 's/.*listening on tcp 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$daemon_log")
daemon_client=$(mktemp)
cat > "$daemon_client" <<'EOF'
set -eu
port=$1
exec 3<>/dev/tcp/127.0.0.1/"$port"
printf '{"op":"admit","source":1,"group":0,"demand_bps":64000,"holding_secs":120}\n' >&3
read -r line <&3
echo "$line" | grep -q '"op":"decision"'
echo "$line" | grep -q '"admitted":true'
printf '{"op":"stats"}\n' >&3
read -r line <&3
echo "$line" | grep -q '"offered":1'
printf '{"op":"shutdown"}\n' >&3
read -r line <&3
echo "$line" | grep -q '"op":"shutting_down"'
EOF
bash "$daemon_client" "$port"
wait "$daemon_pid"
grep -q 'served 1 requests' "$daemon_log"
rm -f "$daemon_log" "$daemon_client"

echo "==> daemon soak (thousands of faulted connections must leak nothing)"
# Drives the daemon with the chaos client fleet — vanishing peers,
# slow-loris writers, malformed frames, duplicate submits, resumes and
# withheld teardowns — then asserts zero leaked bandwidth, bounded
# queue/journal growth, and the shed/error accounting identity.
cargo test --release --offline -q -p anycast-daemon --test soak

echo "CI OK"
