#!/usr/bin/env sh
# Local CI gate: formatting, lints, and the full test suite.
#
# Usage: ./ci.sh
#
# Runs offline — all external dependencies are vendored under vendor/.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

echo "CI OK"
